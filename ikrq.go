// Package ikrq is the public API of the IKRQ library, a reproduction of
// "Indoor Top-k Keyword-aware Routing Query" (Feng, Liu, Li, Lu, Shou, Xu —
// ICDE 2020). Given two indoor points, a distance constraint Δ and a list
// of query keywords, an IKRQ returns the k best start-to-terminal routes
// ranked by a combination of keyword relevance and spatial distance, with
// prime routes guaranteeing result diversity.
//
// The package re-exports the building blocks:
//
//   - indoor space modelling (partitions, doors, stairways) via SpaceBuilder,
//   - two-level indoor keywords (i-words and t-words) via KeywordBuilder,
//   - the query engine with the paper's two search algorithms (ToE and KoE)
//     and all ablation variants via Engine, including the pooled concurrent
//     batch front-end Engine.SearchBatch,
//   - the evaluation-scale data generators via NewSyntheticMall and
//     NewRealMall.
//
// Quick start:
//
//	b := ikrq.NewSpaceBuilder()
//	hall := b.AddPartition("hall", ikrq.KindHallway, ikrq.Rect(0, 0, 30, 10, 0))
//	shop := b.AddPartition("espresso-bar", ikrq.KindRoom, ikrq.Rect(10, 10, 20, 20, 0))
//	b.AddDoor(ikrq.At(15, 10, 0), hall, shop)
//	space, _ := b.Build()
//
//	kb := ikrq.NewKeywordBuilder(space.NumPartitions())
//	kb.AssignPartition(shop, kb.DefineIWord("espresso-bar", []string{"coffee", "latte"}))
//	index, _ := kb.Build()
//
//	engine := ikrq.NewEngine(space, index)
//	res, _ := engine.Search(ikrq.Request{
//	    Ps: ikrq.At(2, 5, 0), Pt: ikrq.At(28, 5, 0),
//	    Delta: 60, QW: []string{"coffee"}, K: 3, Alpha: 0.5, Tau: 0.2,
//	}, ikrq.Options{Algorithm: ikrq.ToE})
//
// # Snapshots
//
// Building an engine derives the whole index layer — the state-graph
// pathfinder, the skeleton lower bounds and (for KoE*) a precomputed
// distance backend — which is wasted work when the same space is served on
// every process start. SaveSnapshot persists a built engine's index layer
// to a versioned binary container and LoadEngine assembles a serving
// engine from it without recomputation:
//
//	var buf bytes.Buffer
//	_ = ikrq.SaveSnapshot(&buf, engine) // bake once …
//	engine2, _ := ikrq.LoadEngine(&buf) // … load everywhere
//
// A loaded engine returns results identical to a freshly built one.
//
// # Eager vs. lazy KoE* distance backend
//
// The KoE* variant routes over a precomputed distance backend: the dense
// all-pairs matrix on small venues (exact everywhere, Θ(states²)
// resident), the hierarchical oracle on large ones (near-linear resident;
// see DESIGN.md §10). By default an engine builds the size-appropriate
// backend lazily on the first KoE* query: workloads that never run KoE*
// pay nothing, but that first query absorbs the full build sweep.
// Engine.Precompute forces it eagerly (PrecomputeMatrix and
// PrecomputeOracle pick a specific kind) — call one at service start-up to
// keep construction cost out of serving latency, and before SaveSnapshot
// to bake the backend into the snapshot so loaded engines never compute it
// at all. SaveSnapshot includes the backend
// section exactly when the engine has built one.
//
// # Live venue conditions
//
// Real venues are not static: shops close after hours, corridors get
// blocked for maintenance, security gates queue. A Conditions overlay
// describes such a situation — a set of closed doors plus per-door
// traversal penalties in walking meters — and rides on the Request, so
// every query can see a different live state of the same engine without
// rebuilding anything:
//
//	cond := ikrq.NewConditions().Close(12, 40).Delay(7, 30)
//	res, _ := engine.Search(ikrq.Request{ ..., Conditions: cond }, opt)
//
// Closures only remove edges and penalties only increase costs, so the
// statically precomputed lower bounds (skeleton, KoE* backend) remain
// admissible and the search stays exact: with an overlay of closures the
// results are identical to a freshly built engine whose space omits those
// doors, and reported route distances include every penalty paid. See
// DESIGN.md §7 for the admissibility argument.
//
// # Result caching
//
// Serving workloads repeat themselves — the same storefront query from
// every visitor near the same entrance — and an IKRQ search is pure: the
// result depends only on the request, the options and the engine's
// immutable index layer. Engine.EnableResultCache adds a bounded
// (entry-count and byte-budget LRU), concurrency-safe cache keyed by a
// canonical fingerprint of the full request, including the Conditions
// overlay. The fingerprint canonicalizes what cannot change the answer —
// keyword order (sims vectors are permuted back on delivery), conditions
// door order, duplicate closures, zero-valued penalties — and keeps
// everything that can, so a hit is byte-identical to what the searcher
// would have produced. Concurrent identical misses collapse to one
// searcher run (singleflight), and Engine.SetPopularity invalidates the
// cache in O(1) by bumping its epoch:
//
//	engine.EnableResultCache(ikrq.CacheOptions{}) // defaults: 4096 entries, 64 MiB
//	res, _ := engine.Search(req, opt)             // first call runs the searcher
//	res, _ = engine.Search(req, opt)              // served from cache
//
// Cached results are shared: treat every Result from a cache-enabled
// engine as read-only. cmd/ikrqd enables the cache per venue by default
// (-cache-entries, -cache-bytes, -cache-off).
//
// # Sequence queries
//
// A plain IKRQ ranks routes that cover a bag of keywords in any order. A
// sequence query instead prescribes an ordered itinerary — "coffee, then a
// phone shop, then a pharmacy" — as a list of keyword legs, and
// Engine.SearchSequence returns the k best routes that visit one matching
// waypoint per leg in exactly that order:
//
//	res, _ := engine.SearchSequence(ikrq.SequenceRequest{
//	    Ps: ps, Pt: pt, Delta: 900, K: 5, Alpha: 0.5, Tau: 0.2,
//	    Legs: []ikrq.SequenceLeg{
//	        {QW: []string{"coffee"}},
//	        {QW: []string{"phone"}},
//	    },
//	})
//
// The planner chains one targeted shortest-path stage per leg over a
// pruned waypoint frontier and is exact: results are identical to scoring
// every waypoint combination exhaustively (DESIGN.md §14 has the
// argument). SequenceRequest.Beam trades that guarantee for bounded work
// on very wide venues; truncation is reported, never silent. Sequence
// searches ride the same result cache, Conditions overlays and
// SearchSequenceContext cancellation as plain queries.
//
// # Serving
//
// The serving layer keeps baked snapshots resident and answers queries
// over HTTP (see cmd/ikrqd and DESIGN.md §9). A VenueRegistry maps venue
// names to lazily loaded, refcounted engines with an optional LRU cap, and
// NewServer wraps it with the HTTP surface — admission control, per-query
// deadlines, /debug/vars counters and graceful drain:
//
//	reg := ikrq.NewVenueRegistry(0)
//	_ = reg.Add(ikrq.VenueConfig{Name: "mall", Path: "mall.ikrq", Warm: true})
//	srv := ikrq.NewServer(reg, ikrq.ServerConfig{})
//	go srv.ListenAndServe(":8080")
//
// Programmatic clients embed the same wire DTOs (QueryRequest,
// QueryResponse) the daemon speaks. The v1 endpoint serves route queries
// only; the versioned v2 surface adds sequence queries behind one
// discriminated envelope plus a per-venue conditions bus — publish a
// Conditions revision and subscribed clients are pushed a re-route the
// moment their answer changes (README "API v2", DESIGN.md §14). In-process
// callers that need cancellation or deadlines without HTTP use
// Engine.SearchContext, which aborts between expansion batches once the
// context is done.
//
// # Configuration
//
// Every tunable in the package follows the same rule: the zero value picks
// a production-safe default, so empty struct literals are always valid.
//
//   - ServerConfig{}: 4×GOMAXPROCS in-flight queries, 10s query deadline,
//     1 MiB body cap, 300k expansion work cap, 64 bus subscribers, 5m
//     subscribe stream lifetime, path overrides on reload rejected.
//   - CacheOptions{}: 4096 entries, 64 MiB budget.
//   - BatchOptions{}: worker pool sized to GOMAXPROCS.
//   - Options{}: plain ToE with every pruning rule on; OptionsFor
//     resolves Table III variant names instead of hand-setting switches.
//   - Request / SequenceRequest: zero Beam means exact search; exactly one
//     of Delta (absolute meters) must be positive — there is no default
//     distance budget, because one cannot be venue-agnostic.
//
// Command-line front-ends (cmd/ikrqd, cmd/ikrq) expose the same knobs as
// flags and never override these defaults silently.
package ikrq

import (
	"io"

	"ikrq/internal/gen"
	"ikrq/internal/geom"
	"ikrq/internal/keyword"
	"ikrq/internal/model"
	"ikrq/internal/search"
	"ikrq/internal/server"
	"ikrq/internal/snapshot"
)

// Geometry.
type (
	// Point is an indoor location: planar coordinates plus a floor.
	Point = geom.Point
)

// At constructs a Point.
func At(x, y float64, floor int) Point { return geom.Pt(x, y, floor) }

// Rect constructs a partition extent (an axis-aligned rectangle on one
// floor); corners are normalized.
func Rect(x0, y0, x1, y1 float64, floor int) geom.Rect { return geom.R(x0, y0, x1, y1, floor) }

// Indoor space model.
type (
	// Space is an immutable indoor space of partitions and doors.
	Space = model.Space
	// SpaceBuilder assembles a Space.
	SpaceBuilder = model.Builder
	// PartitionID identifies a partition.
	PartitionID = model.PartitionID
	// DoorID identifies a door.
	DoorID = model.DoorID
	// PartitionKind classifies partitions (room / hallway / staircase).
	PartitionKind = model.PartitionKind
	// Conditions is a per-query live-venue overlay: closed doors plus
	// additive per-door traversal penalties, applied at query time against
	// the unchanged index (see the package docs, "Live venue conditions").
	Conditions = model.Conditions
)

// Partition kinds.
const (
	KindRoom      = model.KindRoom
	KindHallway   = model.KindHallway
	KindStaircase = model.KindStaircase
)

// NewSpaceBuilder returns an empty space builder.
func NewSpaceBuilder() *SpaceBuilder { return model.NewBuilder() }

// NewConditions returns an empty live-venue overlay; chain Close and Delay
// to describe closures and congestion, then attach it to a Request:
//
//	cond := ikrq.NewConditions().Close(atriumDoor).Delay(gateDoor, 45)
//	res, _ := engine.Search(ikrq.Request{ ..., Conditions: cond }, opt)
func NewConditions() *Conditions { return model.NewConditions() }

// Keyword layer.
type (
	// KeywordIndex organizes a space's i-words and t-words with the P2I,
	// I2P, I2T and T2I mappings.
	KeywordIndex = keyword.Index
	// KeywordBuilder assembles a KeywordIndex.
	KeywordBuilder = keyword.IndexBuilder
	// IWordID identifies an identity word.
	IWordID = keyword.IWordID
)

// NewKeywordBuilder returns a keyword builder for a space with the given
// partition count.
func NewKeywordBuilder(numPartitions int) *KeywordBuilder {
	return keyword.NewIndexBuilder(numPartitions)
}

// Query engine.
type (
	// Engine runs IKRQ queries against one space + keyword index. Besides
	// Search and SearchBatch it exposes the index-layer seams used by
	// snapshotting: Engine.Precompute forces the size-appropriate KoE*
	// distance backend eagerly (see the package docs for the eager-vs-lazy
	// tradeoff), and SaveSnapshot / LoadEngine persist and restore the
	// whole index layer.
	Engine = search.Engine
	// Request is one IKRQ(ps, pt, Δ, QW, k) instance with the scoring
	// parameters α and τ.
	Request = search.Request
	// Options selects the algorithm and ablation switches.
	Options = search.Options
	// BatchOptions configures the concurrent fan-out of Engine.SearchBatch,
	// which runs many requests over a worker pool sharing one engine and
	// returns results identical to a serial Search loop.
	BatchOptions = search.BatchOptions
	// Executor is the pooled per-engine query-execution layer; Engine.Search
	// and Engine.SearchBatch run on it implicitly, and Engine.Executor
	// exposes it directly.
	Executor = search.Executor
	// Result is a ranked list of routes plus search statistics.
	Result = search.Result
	// Route is one returned route.
	Route = search.Route
	// Stats reports the cost of a search run.
	Stats = search.Stats
	// Algorithm selects the expansion strategy.
	Algorithm = search.Algorithm
	// Variant names the paper's algorithm configurations (Table III).
	Variant = search.Variant
	// CacheOptions bounds a result cache enabled with
	// Engine.EnableResultCache (see the package docs, "Result caching").
	CacheOptions = search.CacheOptions
	// ResultCache is a per-engine bounded cache of immutable search results
	// keyed by a canonical request fingerprint.
	ResultCache = search.ResultCache
	// ResultCacheStats is one consistent snapshot of a ResultCache's
	// monotonic counters.
	ResultCacheStats = search.CacheStats
)

// Sequence queries (see the package docs, "Sequence queries").
type (
	// SequenceRequest is one ordered-itinerary query for
	// Engine.SearchSequence: the geometry and scoring parameters of a
	// Request plus keyword legs visited in order.
	SequenceRequest = search.SequenceRequest
	// SequenceLeg is one itinerary stop: the keywords a waypoint must match.
	SequenceLeg = search.SequenceLeg
	// SequenceResult is a ranked list of sequence routes plus planner
	// statistics.
	SequenceResult = search.SequenceResult
	// SequenceRoute is one returned itinerary route with its per-leg
	// relevance breakdown.
	SequenceRoute = search.SequenceRoute
	// SequenceStats reports the cost of a sequence planner run.
	SequenceStats = search.SequenceStats
)

// MaxSequenceLegs bounds the legs a SequenceRequest may carry.
const MaxSequenceLegs = search.MaxSequenceLegs

// Expansion strategies.
const (
	// ToE is the topology-oriented expansion (Algorithm 2).
	ToE = search.ToE
	// KoE is the keyword-oriented expansion (Algorithm 6).
	KoE = search.KoE
)

// NewEngine builds a query engine, deriving the index layer (state graph,
// skeleton lower bounds) from scratch. To reuse a previously built index
// layer, bake it with SaveSnapshot and assemble engines with LoadEngine.
func NewEngine(s *Space, x *KeywordIndex) *Engine { return search.NewEngine(s, x) }

// SaveSnapshot writes the engine's immutable index layer — space, keyword
// index, state graph, skeleton, and the KoE* distance backend if the
// engine has built one (call Engine.Precompute first to force it) — to w
// in the current (v3, flat) snapshot format, which OpenEngine can serve
// zero-copy over an mmap (see internal/snapshot and DESIGN.md §6, §13).
func SaveSnapshot(w io.Writer, e *Engine) error { return snapshot.SaveEngine(w, e) }

// SaveSnapshotV2 writes the engine's index layer in the sequential v2
// snapshot format for interop with pre-v3 readers (`ikrqgen -snapshot-v2`).
// v2 snapshots always decode onto the heap.
//
// Deprecated: bake with SaveSnapshot unless a pre-v3 reader must consume
// the file — v3 snapshots load strictly faster (OpenEngine serves them
// zero-copy over an mmap) and every current reader accepts them. The v2
// writer remains only for that interop window.
func SaveSnapshotV2(w io.Writer, e *Engine) error { return snapshot.SaveEngineV2(w, e) }

// LoadEngine assembles a ready-to-serve engine from a snapshot written by
// SaveSnapshot, skipping all index derivation. The decoder rejects corrupt,
// truncated or newer-versioned input with an error. A loaded engine
// returns results identical to one freshly built over the same space and
// keyword index.
func LoadEngine(r io.Reader) (*Engine, error) { return snapshot.LoadEngine(r) }

// OpenEngine assembles a serving engine from a snapshot file, serving v3
// snapshots as views over an mmap where the platform supports it: cold
// start touches only the pages actually read, and concurrent processes
// serving the same bake share one page-cache copy. The engine owns the
// mapping; call Engine.Close when it stops serving. v1/v2 files (and
// big-endian hosts) transparently fall back to the heap decode.
func OpenEngine(path string) (*Engine, error) { return snapshot.OpenEngine(path) }

// OptionsFor returns the Options for a Table III variant name such as
// "ToE", "KoE", "ToE\\D" or "KoE*".
func OptionsFor(v Variant) (Options, error) { return search.OptionsFor(v) }

// Variants lists all comparable methods of Table III.
func Variants() []Variant { return search.Variants() }

// Serving layer (cmd/ikrqd; see the package docs, "Serving").
type (
	// VenueRegistry maps venue names to lazily loaded, refcounted engines
	// with an optional LRU residency cap.
	VenueRegistry = server.Registry
	// VenueConfig names one servable snapshot.
	VenueConfig = server.VenueConfig
	// VenueHandle is a counted reference to a loaded venue engine; Release
	// it when the query finishes.
	VenueHandle = server.Handle
	// Server is the HTTP serving layer over a VenueRegistry.
	Server = server.Server
	// ServerConfig tunes admission control, deadlines and work caps; the
	// zero value picks production-safe defaults.
	ServerConfig = server.Config
	// QueryRequest is the JSON body of POST /v1/venues/{venue}/query.
	QueryRequest = server.QueryRequest
	// QueryResponse is the JSON body of a successful query.
	QueryResponse = server.QueryResponse
	// RouteWire is one route of a QueryResponse.
	RouteWire = server.RouteWire
	// ConditionsWire is the live-conditions overlay on the wire.
	ConditionsWire = server.ConditionsWire
	// PointWire is an indoor point on the wire.
	PointWire = server.PointWire

	// RouteRequestV2 is the route arm of the v2 query envelope
	// (POST /v2/venues/{venue}/query with "type": "route").
	RouteRequestV2 = server.RouteRequestV2
	// SequenceRequestV2 is the sequence arm of the v2 query envelope
	// ("type": "sequence").
	SequenceRequestV2 = server.SequenceRequestV2
	// SequenceLegWire is one itinerary leg on the wire.
	SequenceLegWire = server.SequenceLegWire
	// SequenceResponse is the JSON body of a successful v2 sequence query.
	SequenceResponse = server.SequenceResponse
	// ConditionsPublishResponse answers PUT /v2/venues/{venue}/conditions.
	ConditionsPublishResponse = server.ConditionsPublishResponse
)

// NewVenueRegistry returns an empty venue registry; maxResident caps how
// many engines stay loaded at once (0: unlimited), evicting the
// least-recently-used idle venue past the cap.
func NewVenueRegistry(maxResident int) *VenueRegistry { return server.NewRegistry(maxResident) }

// NewServer builds the HTTP serving layer over a registry.
func NewServer(reg *VenueRegistry, cfg ServerConfig) *Server { return server.New(reg, cfg) }

// Data generators (Section V workloads).
type (
	// Mall is a generated indoor space with room/hallway bookkeeping.
	Mall = gen.Mall
	// Vocabulary is a generated brand/keyword catalogue.
	Vocabulary = gen.Vocabulary
	// QueryGen draws IKRQ instances against a generated mall.
	QueryGen = gen.QueryGen
	// QueryConfig holds the workload parameters of Table IV.
	QueryConfig = gen.QueryConfig
	// GridConfig parameterizes the floorplan generator.
	GridConfig = gen.GridConfig
)

// NewSyntheticMall builds the paper's synthetic evaluation space (141
// partitions and 220 doors per floor) with the generated keyword catalogue
// attached.
func NewSyntheticMall(floors int, seed uint64) (*Mall, *Vocabulary, *KeywordIndex, error) {
	return gen.SyntheticMall(floors, seed)
}

// NewRealMall builds the simulated seven-floor Hangzhou mall of Section
// V-B: 639 category-clustered stores and Hangzhou-like keyword statistics.
func NewRealMall(seed uint64) (*Mall, *Vocabulary, *KeywordIndex, error) {
	return gen.RealMall(gen.RealConfig{Seed: seed})
}

// NewQueryGen builds a query generator over a generated mall. Pass the
// engine built for the same mall so the generator can reuse its distance
// structures.
func NewQueryGen(m *Mall, x *KeywordIndex, v *Vocabulary, e *Engine, seed uint64) *QueryGen {
	return gen.NewQueryGen(m, x, v, e.PathFinder(), seed)
}

// DefaultQueryConfig returns Table IV's default workload parameters.
func DefaultQueryConfig(seed uint64) QueryConfig { return gen.DefaultQueryConfig(seed) }
