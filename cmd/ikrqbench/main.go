// Command ikrqbench regenerates the paper's evaluation figures (Fig. 4–20
// plus the α and τ sweeps) as text tables.
//
// Usage:
//
//	ikrqbench [-fig fig05] [-quick] [-seed 1] [-instances 10] [-runs 5] [-workers 1]
//	ikrqbench -snapshot mall.ikrq [-quick]
//	ikrqbench -benchjson BENCH.json
//	ikrqbench -quick -benchdiff BENCH.json
//	ikrqbench -scale [-quick] [-scalejson BENCH_SCALE.json]
//
// Every mode accepts -cpuprofile/-memprofile, which write pprof profiles
// covering the whole run — the first stop for diagnosing a kernel
// regression without editing code.
//
// With -benchjson the harness skips the figure suite and instead measures
// the per-query hot path of every Table III variant plus the all-pairs
// matrix build, writing machine-readable per-variant ns/op, B/op and
// allocs/op to the given file (the BENCH.json tracked at the repo root)
// and a summary table to stdout. -benchdiff re-measures the same sweep and
// exits non-zero if allocs/op drifted from the given baseline in either
// direction (ns/op is printed but advisory — shared runners time too
// noisily to gate on); CI runs it against the committed BENCH.json.
//
// Without -fig every figure runs in presentation order. -quick shrinks the
// workload for a fast smoke pass. Full ToE\P figures run under an
// expansion cap (reported in the output) because the unpruned variant is
// intentionally explosive — the paper itself measures it at up to 10^6 ms.
//
// With -scale (or -scalejson) the harness sweeps mega venues of growing
// size and measures both KoE* backends: oracle bake time and resident
// bytes against the dense matrix's (analytic above a state cap), plus
// per-query KoE* latency on each. -scalejson writes BENCH_SCALE.json, the
// advisory scaling record committed at the repo root; -quick stops the
// sweep at CI-sized venues.
//
// With -snapshot the harness benchmarks serving from a baked index (see
// `ikrqgen -snapshot`): the cold-start cost of loading versus rebuilding,
// then every Table III variant over queries sampled from the loaded space.
// -close and -delay (same syntax as cmd/ikrq) overlay live venue
// conditions on every sampled query, measuring a degraded venue served
// from the unchanged bake. The `conditions` figure of the main suite
// compares that overlay path against rebuilding a door-filtered engine
// per closure scenario.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"ikrq/internal/bench"
	"ikrq/internal/cli"
)

func main() { os.Exit(mainImpl()) }

// mainImpl holds the real entry point and reports the exit code, so the
// deferred profile writers run on every path — os.Exit in main would skip
// them and leave -cpuprofile/-memprofile output truncated on failing runs.
func mainImpl() int {
	var (
		figID      = flag.String("fig", "", "single figure to run (fig04..fig20, alpha, tau)")
		quick      = flag.Bool("quick", false, "reduced workload")
		seed       = flag.Uint64("seed", 1, "workload seed")
		instances  = flag.Int("instances", 0, "query instances per setting (default: paper's 10, quick: 3)")
		runs       = flag.Int("runs", 0, "runs per instance (default: paper's 5, quick: 1)")
		cap        = flag.Int("cap", 0, "expansion cap for ToE\\P (default 300000, quick 50000)")
		workers    = flag.Int("workers", 1, "batch-executor workers per figure cell (>1 shortens sweeps but adds timing contention)")
		snap       = flag.String("snapshot", "", "benchmark serving from this baked snapshot instead of the figure suite")
		closeStr   = flag.String("close", "", "with -snapshot: closed doors overlaid on every query, e.g. \"3,17\"")
		delayStr   = flag.String("delay", "", "with -snapshot: door penalties overlaid on every query, e.g. \"12:30,40:15.5\"")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
		benchJSON  = flag.String("benchjson", "", "measure the Table III hot paths and write per-variant ns/op, B/op, allocs/op to this file (BENCH.json)")
		benchDiff  = flag.String("benchdiff", "", "re-measure the hot paths and fail (exit 1) if allocs/op regressed against this baseline BENCH.json; ns/op is advisory")
		scale      = flag.Bool("scale", false, "run the venue-size scaling sweep (oracle vs dense KoE* backend) and print a table")
		scaleJSON  = flag.String("scalejson", "", "run the scaling sweep and write the report to this file (BENCH_SCALE.json)")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return cli.Fail(os.Stderr, "ikrqbench", fmt.Errorf("-cpuprofile: %w", err))
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return cli.Fail(os.Stderr, "ikrqbench", fmt.Errorf("-cpuprofile: %w", err))
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ikrqbench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // profile live objects, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "ikrqbench: -memprofile: %v\n", err)
			}
		}()
	}

	cond, err := cli.ParseConditions(*closeStr, *delayStr)
	if err != nil {
		return cli.Fail(os.Stderr, "ikrqbench", err)
	}
	if cond != nil && *snap == "" {
		return cli.Fail(os.Stderr, "ikrqbench",
			cli.Usagef("-close/-delay require -snapshot (the figure suite samples its own scenarios)"))
	}

	cfg := bench.DefaultConfig(*seed)
	if *quick {
		cfg = bench.QuickConfig(*seed)
	}
	if *instances > 0 {
		cfg.Instances = *instances
	}
	if *runs > 0 {
		cfg.Runs = *runs
	}
	if *cap > 0 {
		cfg.CapExpansions = *cap
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}
	if *benchJSON != "" && *benchDiff != "" {
		return cli.Fail(os.Stderr, "ikrqbench",
			cli.Usagef("-benchjson and -benchdiff are mutually exclusive (write a baseline or check against one)"))
	}
	if *scale || *scaleJSON != "" {
		rep, err := bench.RunScale(cfg, *quick)
		if err != nil {
			return cli.Fail(os.Stderr, "ikrqbench", err)
		}
		if *scaleJSON != "" {
			f, err := os.Create(*scaleJSON)
			if err != nil {
				return cli.Fail(os.Stderr, "ikrqbench", err)
			}
			if err := rep.WriteJSON(f); err != nil {
				f.Close()
				return cli.Fail(os.Stderr, "ikrqbench", err)
			}
			if err := f.Close(); err != nil {
				return cli.Fail(os.Stderr, "ikrqbench", err)
			}
		}
		rep.Fprint(os.Stdout)
		if err := rep.Check(); err != nil {
			return cli.Fail(os.Stderr, "ikrqbench", err)
		}
		return cli.ExitOK
	}
	if *benchJSON != "" {
		rep, err := bench.RunPerf(cfg)
		if err != nil {
			return cli.Fail(os.Stderr, "ikrqbench", err)
		}
		f, err := os.Create(*benchJSON)
		if err != nil {
			return cli.Fail(os.Stderr, "ikrqbench", err)
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			return cli.Fail(os.Stderr, "ikrqbench", err)
		}
		if err := f.Close(); err != nil {
			return cli.Fail(os.Stderr, "ikrqbench", err)
		}
		rep.Fprint(os.Stdout)
		return cli.ExitOK
	}
	if *benchDiff != "" {
		f, err := os.Open(*benchDiff)
		if err != nil {
			return cli.Fail(os.Stderr, "ikrqbench", err)
		}
		baseline, err := bench.ReadPerfReport(f)
		f.Close()
		if err != nil {
			return cli.Fail(os.Stderr, "ikrqbench", err)
		}
		rep, err := bench.RunPerf(cfg)
		if err != nil {
			return cli.Fail(os.Stderr, "ikrqbench", err)
		}
		all, regressed, err := bench.DiffAllocs(baseline, rep)
		if err != nil {
			return cli.Fail(os.Stderr, "ikrqbench", err)
		}
		fmt.Printf("benchdiff against %s (alloc guard; ns/op advisory)\n", *benchDiff)
		for _, d := range all {
			fmt.Println(d)
		}
		if len(regressed) > 0 {
			return cli.Fail(os.Stderr, "ikrqbench",
				fmt.Errorf("allocation regression in %d entries; if intentional, regenerate the baseline with -benchjson", len(regressed)))
		}
		fmt.Println("benchdiff: allocations unchanged")
		return cli.ExitOK
	}
	if *snap != "" {
		rep, err := bench.RunSnapshot(*snap, cfg, cond)
		if err != nil {
			return cli.Fail(os.Stderr, "ikrqbench", err)
		}
		rep.Fprint(os.Stdout)
		return cli.ExitOK
	}
	env := bench.NewEnv(cfg)
	all := env.All()

	ids := bench.Order()
	if *figID != "" {
		if all[*figID] == nil {
			return cli.Fail(os.Stderr, "ikrqbench",
				cli.Usagef("unknown figure %q; known: %v", *figID, bench.Order()))
		}
		ids = []string{*figID}
	}
	for _, id := range ids {
		fig, err := all[id]()
		if err != nil {
			return cli.Fail(os.Stderr, "ikrqbench", fmt.Errorf("%s: %w", id, err))
		}
		fig.Fprint(os.Stdout)
	}
	return cli.ExitOK
}
