// Command ikrqbench regenerates the paper's evaluation figures (Fig. 4–20
// plus the α and τ sweeps) as text tables.
//
// Usage:
//
//	ikrqbench [-fig fig05] [-quick] [-seed 1] [-instances 10] [-runs 5] [-workers 1]
//	ikrqbench -snapshot mall.ikrq [-quick]
//
// Without -fig every figure runs in presentation order. -quick shrinks the
// workload for a fast smoke pass. Full ToE\P figures run under an
// expansion cap (reported in the output) because the unpruned variant is
// intentionally explosive — the paper itself measures it at up to 10^6 ms.
//
// With -snapshot the harness benchmarks serving from a baked index (see
// `ikrqgen -snapshot`): the cold-start cost of loading versus rebuilding,
// then every Table III variant over queries sampled from the loaded space.
// -close and -delay (same syntax as cmd/ikrq) overlay live venue
// conditions on every sampled query, measuring a degraded venue served
// from the unchanged bake. The `conditions` figure of the main suite
// compares that overlay path against rebuilding a door-filtered engine
// per closure scenario.
package main

import (
	"flag"
	"fmt"
	"os"

	"ikrq/internal/bench"
	"ikrq/internal/cli"
)

func main() {
	var (
		figID     = flag.String("fig", "", "single figure to run (fig04..fig20, alpha, tau)")
		quick     = flag.Bool("quick", false, "reduced workload")
		seed      = flag.Uint64("seed", 1, "workload seed")
		instances = flag.Int("instances", 0, "query instances per setting (default: paper's 10, quick: 3)")
		runs      = flag.Int("runs", 0, "runs per instance (default: paper's 5, quick: 1)")
		cap       = flag.Int("cap", 0, "expansion cap for ToE\\P (default 300000, quick 50000)")
		workers   = flag.Int("workers", 1, "batch-executor workers per figure cell (>1 shortens sweeps but adds timing contention)")
		snap      = flag.String("snapshot", "", "benchmark serving from this baked snapshot instead of the figure suite")
		closeStr  = flag.String("close", "", "with -snapshot: closed doors overlaid on every query, e.g. \"3,17\"")
		delayStr  = flag.String("delay", "", "with -snapshot: door penalties overlaid on every query, e.g. \"12:30,40:15.5\"")
	)
	flag.Parse()

	cond, err := cli.ParseConditions(*closeStr, *delayStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ikrqbench: %v\n", err)
		os.Exit(2)
	}
	if cond != nil && *snap == "" {
		fmt.Fprintln(os.Stderr, "ikrqbench: -close/-delay require -snapshot (the figure suite samples its own scenarios)")
		os.Exit(2)
	}

	cfg := bench.DefaultConfig(*seed)
	if *quick {
		cfg = bench.QuickConfig(*seed)
	}
	if *instances > 0 {
		cfg.Instances = *instances
	}
	if *runs > 0 {
		cfg.Runs = *runs
	}
	if *cap > 0 {
		cfg.CapExpansions = *cap
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}
	if *snap != "" {
		rep, err := bench.RunSnapshot(*snap, cfg, cond)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ikrqbench: %v\n", err)
			os.Exit(1)
		}
		rep.Fprint(os.Stdout)
		return
	}
	env := bench.NewEnv(cfg)
	all := env.All()

	ids := bench.Order()
	if *figID != "" {
		if all[*figID] == nil {
			fmt.Fprintf(os.Stderr, "ikrqbench: unknown figure %q; known: %v\n", *figID, bench.Order())
			os.Exit(2)
		}
		ids = []string{*figID}
	}
	for _, id := range ids {
		fig, err := all[id]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ikrqbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fig.Fprint(os.Stdout)
	}
}
