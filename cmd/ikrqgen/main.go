// Command ikrqgen generates an evaluation space and reports, dumps, or
// bakes it: partition/door counts per floor, keyword statistics, the full
// space as JSON for external tooling, or a binary engine snapshot that
// cmd/ikrq and cmd/ikrqbench can serve from without rebuilding the index.
//
// Usage:
//
//	ikrqgen -floors 5 -seed 1                     # statistics only
//	ikrqgen -real -json > mall.json               # dump the simulated Hangzhou mall
//	ikrqgen -real -snapshot mall.ikrq -matrix     # bake a snapshot incl. the KoE* matrix
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ikrq"
	"ikrq/internal/cli"
	"ikrq/internal/export"
	"ikrq/internal/keyword"
)

func main() { os.Exit(run()) }

// run is the real entry point; every failure funnels through cli.Fail so
// bad flags exit 2 with a usage pointer and runtime failures exit 1, the
// convention shared by all ikrq commands.
func run() int {
	var (
		floors   = flag.Int("floors", 5, "synthetic floors")
		real     = flag.Bool("real", false, "simulated Hangzhou mall")
		seed     = flag.Uint64("seed", 1, "generation seed")
		asJSON   = flag.Bool("json", false, "dump the space as JSON to stdout")
		snapPath = flag.String("snapshot", "", "bake the engine to this snapshot file")
		matrix   = flag.Bool("matrix", false, "precompute the KoE* all-pairs matrix into the snapshot")
	)
	flag.Parse()
	if *asJSON && *snapPath != "" {
		return cli.Fail(os.Stderr, "ikrqgen",
			cli.Usagef("-json and -snapshot are mutually exclusive; run ikrqgen twice with the same -seed"))
	}

	mall, voc, idx, err := cli.Mall(*real, *floors, *seed)
	if err != nil {
		return cli.Fail(os.Stderr, "ikrqgen", err)
	}
	s := mall.Space

	if *asJSON {
		if err := export.Encode(os.Stdout, s, idx); err != nil {
			return cli.Fail(os.Stderr, "ikrqgen", err)
		}
		return cli.ExitOK
	}

	if *snapPath != "" {
		if err := bake(*snapPath, *matrix, mall, idx); err != nil {
			return cli.Fail(os.Stderr, "ikrqgen", err)
		}
		return cli.ExitOK
	}

	fmt.Printf("space: %d floors, %d partitions, %d doors, %d stairways\n",
		s.Floors(), s.NumPartitions(), s.NumDoors(), len(s.Stairways()))
	fmt.Printf("rooms: %d, hallway cells: %d\n", len(mall.Rooms), len(mall.HallCells))
	named := 0
	for _, r := range mall.Rooms {
		if idx.P2I(r) != keyword.NoIWord {
			named++
		}
	}
	fmt.Printf("named rooms: %d\n", named)
	fmt.Printf("keywords: %d i-words, %d t-words in index; vocabulary %d brands, avg %.1f t-words/brand, %d distinct t-words\n",
		idx.NumIWords(), idx.NumTWords(), len(voc.Brands), voc.AvgTWords(), voc.DistinctTWords)
	return cli.ExitOK
}

// bake builds the engine (optionally forcing the KoE* matrix) and writes
// the snapshot, reporting what each stage cost so operators can see what a
// load will save.
func bake(path string, withMatrix bool, mall *ikrq.Mall, idx *ikrq.KeywordIndex) error {
	t0 := time.Now()
	engine := ikrq.NewEngine(mall.Space, idx)
	build := time.Since(t0)
	var matrixTime time.Duration
	if withMatrix {
		t1 := time.Now()
		engine.PrecomputeMatrix()
		matrixTime = time.Since(t1)
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	t2 := time.Now()
	if err := ikrq.SaveSnapshot(f, engine); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("baked %s: %.1f MB in %v (index build %v", path,
		float64(info.Size())/(1<<20), time.Since(t2), build)
	if withMatrix {
		fmt.Printf(", KoE* matrix %v", matrixTime)
	} else {
		fmt.Printf(", no KoE* matrix — pass -matrix to bake it")
	}
	fmt.Println(")")
	return nil
}
