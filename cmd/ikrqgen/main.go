// Command ikrqgen generates an evaluation space and reports, dumps, or
// bakes it: partition/door counts per floor, keyword statistics, the full
// space as JSON for external tooling, or a binary engine snapshot that
// cmd/ikrq and cmd/ikrqbench can serve from without rebuilding the index.
//
// Usage:
//
//	ikrqgen -floors 5 -seed 1                     # statistics only
//	ikrqgen -real -json > mall.json               # dump the simulated Hangzhou mall
//	ikrqgen -real -snapshot mall.ikrq -matrix     # bake a snapshot incl. the KoE* matrix
//	ikrqgen -floors 14 -shops-per-floor 141 -snapshot mega.ikrq -oracle
//	                                              # bake a mega venue with the hierarchical oracle
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"ikrq"
	"ikrq/internal/cli"
	"ikrq/internal/export"
	"ikrq/internal/keyword"
)

func main() { os.Exit(run()) }

// run is the real entry point; every failure funnels through cli.Fail so
// bad flags exit 2 with a usage pointer and runtime failures exit 1, the
// convention shared by all ikrq commands.
func run() int {
	var (
		floors   = flag.Int("floors", 5, "synthetic floors")
		shops    = flag.Int("shops-per-floor", 0, "widen the synthetic grid to about this many shops per floor (0: the paper's default width)")
		real     = flag.Bool("real", false, "simulated Hangzhou mall")
		seed     = flag.Uint64("seed", 1, "generation seed")
		asJSON   = flag.Bool("json", false, "dump the space as JSON to stdout")
		snapPath = flag.String("snapshot", "", "bake the engine to this snapshot file")
		matrix   = flag.Bool("matrix", false, "precompute the dense KoE* all-pairs matrix into the snapshot")
		oracle   = flag.Bool("oracle", false, "precompute the hierarchical KoE* distance oracle into the snapshot (the large-venue backend)")
		snapV2   = flag.Bool("snapshot-v2", false, "bake the sequential v2 snapshot format for pre-v3 readers (no zero-copy mmap serving)")
	)
	flag.Parse()
	if *asJSON && *snapPath != "" {
		return cli.Fail(os.Stderr, "ikrqgen",
			cli.Usagef("-json and -snapshot are mutually exclusive; run ikrqgen twice with the same -seed"))
	}
	if *matrix && *oracle {
		return cli.Fail(os.Stderr, "ikrqgen",
			cli.Usagef("-matrix and -oracle are mutually exclusive; a snapshot carries one KoE* backend"))
	}
	if *real && *shops > 0 {
		return cli.Fail(os.Stderr, "ikrqgen",
			cli.Usagef("-shops-per-floor shapes the synthetic grid; drop -real to use it"))
	}
	if *snapV2 && *snapPath == "" {
		return cli.Fail(os.Stderr, "ikrqgen",
			cli.Usagef("-snapshot-v2 selects a bake format; pass -snapshot too"))
	}

	mall, voc, idx, err := cli.Mall(*real, *floors, *shops, *seed)
	if err != nil {
		return cli.Fail(os.Stderr, "ikrqgen", err)
	}
	s := mall.Space

	if *asJSON {
		if err := export.Encode(os.Stdout, s, idx); err != nil {
			return cli.Fail(os.Stderr, "ikrqgen", err)
		}
		return cli.ExitOK
	}

	if *snapPath != "" {
		backend := ""
		if *matrix {
			backend = "matrix"
		} else if *oracle {
			backend = "oracle"
		}
		if err := bake(*snapPath, backend, *snapV2, mall, idx); err != nil {
			return cli.Fail(os.Stderr, "ikrqgen", err)
		}
		return cli.ExitOK
	}

	fmt.Printf("space: %d floors, %d partitions, %d doors, %d stairways\n",
		s.Floors(), s.NumPartitions(), s.NumDoors(), len(s.Stairways()))
	fmt.Printf("rooms: %d, hallway cells: %d\n", len(mall.Rooms), len(mall.HallCells))
	named := 0
	for _, r := range mall.Rooms {
		if idx.P2I(r) != keyword.NoIWord {
			named++
		}
	}
	fmt.Printf("named rooms: %d\n", named)
	fmt.Printf("keywords: %d i-words, %d t-words in index; vocabulary %d brands, avg %.1f t-words/brand, %d distinct t-words\n",
		idx.NumIWords(), idx.NumTWords(), len(voc.Brands), voc.AvgTWords(), voc.DistinctTWords)
	return cli.ExitOK
}

// bake builds the engine (optionally forcing a KoE* distance backend,
// "matrix" or "oracle") and writes the snapshot — the mmap-servable v3
// format by default, sequential v2 when legacy is set — reporting what each
// stage cost so operators can see what a load will save.
func bake(path, backend string, legacy bool, mall *ikrq.Mall, idx *ikrq.KeywordIndex) error {
	t0 := time.Now()
	engine := ikrq.NewEngine(mall.Space, idx)
	build := time.Since(t0)
	var backendTime time.Duration
	if backend != "" {
		t1 := time.Now()
		if backend == "matrix" {
			engine.PrecomputeMatrix()
		} else {
			engine.PrecomputeOracle()
		}
		backendTime = time.Since(t1)
	}

	// Write to a temp file in the destination directory and rename it into
	// place. A serving daemon may hold a live mmap of the old file (reload
	// re-reads the same path), so the old bytes must never be rewritten in
	// place — truncation would SIGBUS the daemon and partial writes would
	// serve torn pages. Rename swaps the directory entry atomically; the old
	// inode lives on under the daemon's mapping until it unmaps.
	dir, base := filepath.Dir(path), filepath.Base(path)
	f, err := os.CreateTemp(dir, "."+base+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer os.Remove(tmp) // no-op after a successful rename
	t2 := time.Now()
	save := ikrq.SaveSnapshot
	if legacy {
		save = ikrq.SaveSnapshotV2
	}
	if err := save(f, engine); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Chmod(tmp, 0o644); err != nil { // CreateTemp defaults to 0600
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("baked %s: %.1f MB in %v (index build %v", path,
		float64(info.Size())/(1<<20), time.Since(t2), build)
	if backend != "" {
		fmt.Printf(", KoE* %s %v", backend, backendTime)
	} else {
		fmt.Printf(", no KoE* backend — pass -matrix or -oracle to bake one")
	}
	fmt.Println(")")
	return nil
}
