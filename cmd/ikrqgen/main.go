// Command ikrqgen generates an evaluation space and reports (or dumps) its
// structure: partition/door counts per floor, keyword statistics, and
// optionally the full space as JSON for external tooling.
//
// Usage:
//
//	ikrqgen -floors 5 -seed 1          # statistics only
//	ikrqgen -real -json > mall.json    # dump the simulated Hangzhou mall
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"ikrq"
	"ikrq/internal/keyword"
	"ikrq/internal/model"
)

type jsonSpace struct {
	Floors     int             `json:"floors"`
	Partitions []jsonPartition `json:"partitions"`
	Doors      []jsonDoor      `json:"doors"`
	Stairways  []jsonStairway  `json:"stairways"`
}

type jsonPartition struct {
	ID     int32      `json:"id"`
	Name   string     `json:"name"`
	Kind   string     `json:"kind"`
	Floor  int        `json:"floor"`
	Bounds [4]float64 `json:"bounds"` // minX, minY, maxX, maxY
	IWord  string     `json:"iword,omitempty"`
	TWords []string   `json:"twords,omitempty"`
}

type jsonDoor struct {
	ID        int32   `json:"id"`
	X         float64 `json:"x"`
	Y         float64 `json:"y"`
	Floor     int     `json:"floor"`
	Enterable []int32 `json:"enterable"`
	Leaveable []int32 `json:"leaveable"`
	Stair     bool    `json:"stair,omitempty"`
}

type jsonStairway struct {
	From   int32   `json:"from"`
	To     int32   `json:"to"`
	Length float64 `json:"length"`
}

func main() {
	var (
		floors = flag.Int("floors", 5, "synthetic floors")
		real   = flag.Bool("real", false, "simulated Hangzhou mall")
		seed   = flag.Uint64("seed", 1, "generation seed")
		asJSON = flag.Bool("json", false, "dump the space as JSON to stdout")
	)
	flag.Parse()

	var (
		mall *ikrq.Mall
		voc  *ikrq.Vocabulary
		idx  *ikrq.KeywordIndex
		err  error
	)
	if *real {
		mall, voc, idx, err = ikrq.NewRealMall(*seed)
	} else {
		mall, voc, idx, err = ikrq.NewSyntheticMall(*floors, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ikrqgen:", err)
		os.Exit(1)
	}
	s := mall.Space

	if *asJSON {
		dump(s, idx)
		return
	}

	fmt.Printf("space: %d floors, %d partitions, %d doors, %d stairways\n",
		s.Floors(), s.NumPartitions(), s.NumDoors(), len(s.Stairways()))
	fmt.Printf("rooms: %d, hallway cells: %d\n", len(mall.Rooms), len(mall.HallCells))
	named := 0
	for _, r := range mall.Rooms {
		if idx.P2I(r) != keyword.NoIWord {
			named++
		}
	}
	fmt.Printf("named rooms: %d\n", named)
	fmt.Printf("keywords: %d i-words, %d t-words in index; vocabulary %d brands, avg %.1f t-words/brand, %d distinct t-words\n",
		idx.NumIWords(), idx.NumTWords(), len(voc.Brands), voc.AvgTWords(), voc.DistinctTWords)
}

func dump(s *model.Space, idx *keyword.Index) {
	out := jsonSpace{Floors: s.Floors()}
	for _, p := range s.Partitions() {
		jp := jsonPartition{
			ID:    int32(p.ID),
			Name:  p.Name,
			Kind:  p.Kind.String(),
			Floor: p.Floor(),
			Bounds: [4]float64{p.Bounds.MinX, p.Bounds.MinY,
				p.Bounds.MaxX, p.Bounds.MaxY},
		}
		if w := idx.P2I(p.ID); w != keyword.NoIWord {
			jp.IWord = idx.IWord(w)
			for _, t := range idx.I2T(w) {
				jp.TWords = append(jp.TWords, idx.TWord(t))
			}
		}
		out.Partitions = append(out.Partitions, jp)
	}
	for _, d := range s.Doors() {
		jd := jsonDoor{
			ID: int32(d.ID), X: d.Pos.X, Y: d.Pos.Y, Floor: d.Floor(),
			Stair: d.Stair,
		}
		for _, v := range d.Enterable() {
			jd.Enterable = append(jd.Enterable, int32(v))
		}
		for _, v := range d.Leaveable() {
			jd.Leaveable = append(jd.Leaveable, int32(v))
		}
		out.Doors = append(out.Doors, jd)
	}
	for _, sw := range s.Stairways() {
		out.Stairways = append(out.Stairways, jsonStairway{
			From: int32(sw.From), To: int32(sw.To), Length: sw.Length,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "ikrqgen:", err)
		os.Exit(1)
	}
}
