// Command ikrqd is the IKRQ serving daemon: it keeps one or more baked
// engine snapshots resident in a venue registry and answers routing
// queries over HTTP until told to drain.
//
// Usage:
//
//	ikrqgen -real -snapshot mall.ikrq -matrix        # bake once …
//	ikrqd -listen :8080 -venue mall=mall.ikrq        # … serve everywhere
//	ikrqd -venue a=a.ikrq -venue b=b.ikrq -max-resident 1
//	ikrqd -venue mall=mall.ikrq -loadgen 16          # self-test, no listening
//
// Endpoints:
//
//	GET  /healthz                      liveness; 503 once draining
//	GET  /v1/venues                    per-venue load/refcount/query stats
//	POST /v1/venues/{venue}/query      one IKRQ query (JSON; see README)
//	POST /v1/venues/{venue}/reload     hot-swap the venue's snapshot in place
//	POST /v2/venues/{venue}/query      versioned envelope: route or sequence query
//	PUT  /v2/venues/{venue}/conditions publish a venue-wide conditions revision
//	POST /v2/venues/{venue}/subscribe  SSE stream re-routing one query on publish
//	GET  /debug/vars                   QPS, in-flight, p50/p99, shed/push counts
//
// Venues load lazily on first query (or eagerly with -warm); -max-resident
// caps how many engines stay in memory at once, evicting the
// least-recently-used idle venue. v3 snapshots are served zero-copy over an
// mmap where the platform supports it — /v1/venues reports each venue's
// heap_bytes/mapped_bytes split — and a re-baked snapshot can be swapped in
// under live traffic with the reload endpoint (in-flight queries drain on
// the engine they started on; the result cache is invalidated so no stale
// route survives the swap). Reload path overrides must be relative paths
// inside -snapshot-root; without that flag the endpoint only re-reads each
// venue's configured path — it shares the query listener and must not load
// arbitrary files. Queries run under -timeout deadlines and
// a bounded in-flight semaphore (-max-inflight) that sheds excess load
// with 429 + Retry-After. SIGINT/SIGTERM starts a graceful drain: the
// listener closes, /healthz flips to 503, and in-flight queries finish
// within the -drain grace period.
//
// The v2 surface wraps route and sequence queries in one "type"-
// discriminated envelope and adds the conditions bus: PUT a conditions
// overlay (closed doors, per-door delays) and every subscribed client whose
// answer changed is pushed a re-route over its SSE stream. -max-subscribers
// bounds the live streams, -subscribe-max their lifetime.
//
// Repeated queries are answered from a per-venue result cache keyed by a
// canonical fingerprint of the full request — geometry, keywords, variant
// and the conditions overlay — so a cache hit is byte-identical to the
// uncached answer. -cache-entries and -cache-bytes bound it; -cache-off
// disables it.
//
// With -loadgen n the daemon skips listening: it fires n deterministic
// sampled queries per venue through the full HTTP stack (cycling all Table
// III variants), prints per-venue latency, and exits non-zero if any query
// fails — the same smoke the CI e2e job runs with curl. -mix zipf switches
// the workload to skewed repeats over a small query pool and additionally
// reports the cache hit rate and the hit/miss latency split.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ikrq/internal/cli"
	"ikrq/internal/search"
	"ikrq/internal/server"
)

func main() { os.Exit(run()) }

func run() int {
	var venues venueFlags
	var (
		listen      = flag.String("listen", ":8080", "HTTP listen address")
		warm        = flag.Bool("warm", false, "load every venue (and its KoE* matrix) at startup instead of on first query")
		maxResident = flag.Int("max-resident", 0, "max engines resident at once, LRU-evicted (0: unlimited)")
		maxInflight = flag.Int("max-inflight", 0, "max concurrently executing queries before shedding with 429 (0: 4×GOMAXPROCS)")
		timeout     = flag.Duration("timeout", 10*time.Second, "per-query deadline")
		drain       = flag.Duration("drain", 15*time.Second, "grace period for in-flight queries on SIGTERM")
		maxExpand   = flag.Int("max-expansions", 300000, "per-query stamp-expansion work cap (-1: uncapped)")
		snapRoot    = flag.String("snapshot-root", "", "directory reload path overrides may load snapshots from (empty: reload only re-reads each venue's configured path)")
		maxSubs     = flag.Int("max-subscribers", 0, "max live conditions-bus SSE streams across all venues (0: 64)")
		subMax      = flag.Duration("subscribe-max", 0, "max lifetime of one subscribe stream before the client must reconnect (0: 5m)")
		loadgen     = flag.Int("loadgen", 0, "self-test: run this many sampled queries per venue through the HTTP stack and exit")
		seed        = flag.Uint64("seed", 1, "loadgen sampling seed")
		mix         = flag.String("mix", "sweep", "loadgen workload mix: sweep (distinct queries over all variants) or zipf (skewed repeats; reports cache hit rate)")

		cacheEntries = flag.Int("cache-entries", search.DefaultCacheEntries, "per-venue result-cache capacity in entries")
		cacheBytes   = flag.Int64("cache-bytes", search.DefaultCacheBytes, "per-venue result-cache budget in bytes (-1: unbounded)")
		cacheOff     = flag.Bool("cache-off", false, "disable the result cache; every query runs the searcher")
	)
	flag.Var(&venues, "venue", "venue to serve as name=path/to.snapshot (repeatable)")
	flag.Parse()

	if len(venues) == 0 {
		return cli.Fail(os.Stderr, "ikrqd", cli.Usagef("at least one -venue name=path is required"))
	}
	reg := server.NewRegistry(*maxResident)
	if !*cacheOff {
		reg.EnableResultCache(search.CacheOptions{MaxEntries: *cacheEntries, MaxBytes: *cacheBytes})
	}
	for _, v := range venues {
		v.Warm = *warm
		if err := reg.Add(v); err != nil {
			return cli.Fail(os.Stderr, "ikrqd", cli.Usagef("%v", err))
		}
	}
	if *warm {
		t0 := time.Now()
		if err := reg.WarmAll(); err != nil {
			return cli.Fail(os.Stderr, "ikrqd", err)
		}
		log.Printf("ikrqd: warmed %d venues in %v", reg.Len(), time.Since(t0).Round(time.Millisecond))
	}

	cfg := server.Config{
		MaxInFlight:     *maxInflight,
		QueryTimeout:    *timeout,
		MaxExpansions:   *maxExpand,
		SnapshotRoot:    *snapRoot,
		MaxSubscribers:  *maxSubs,
		SubscribeMaxAge: *subMax,
	}
	srv := server.New(reg, cfg)

	if *loadgen > 0 {
		if err := srv.LoadGen(os.Stdout, *loadgen, *seed, *mix); err != nil {
			return cli.Fail(os.Stderr, "ikrqd", err)
		}
		return cli.ExitOK
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return cli.Fail(os.Stderr, "ikrqd", err)
	}
	log.Printf("ikrqd: serving %d venues on %s (%v)", reg.Len(), l.Addr(), srv.Config())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()

	select {
	case err := <-errc:
		// The listener failed before any signal; Serve never returns nil.
		return cli.Fail(os.Stderr, "ikrqd", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of waiting out the drain
	log.Printf("ikrqd: draining (grace %v)", *drain)
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return cli.Fail(os.Stderr, "ikrqd", fmt.Errorf("drain expired with queries still running: %w", err))
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return cli.Fail(os.Stderr, "ikrqd", err)
	}
	log.Printf("ikrqd: drained cleanly")
	return cli.ExitOK
}

// venueFlags collects repeated -venue name=path flags.
type venueFlags []server.VenueConfig

func (v *venueFlags) String() string {
	parts := make([]string, len(*v))
	for i, c := range *v {
		parts[i] = c.Name + "=" + c.Path
	}
	return strings.Join(parts, ",")
}

func (v *venueFlags) Set(s string) error {
	name, path, ok := strings.Cut(s, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path/to.snapshot, got %q", s)
	}
	*v = append(*v, server.VenueConfig{Name: name, Path: path})
	return nil
}
