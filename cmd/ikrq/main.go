// Command ikrq runs a single IKRQ query against a generated mall — or
// against a baked snapshot — and prints the returned routes.
//
// Usage:
//
//	ikrq -floors 5 -seed 1 -k 7 -qw "coffee,latte" -alg KoE -eta 1.6
//	ikrq -snapshot mall.ikrq -qw "coffee,latte" -alg "KoE*"
//	ikrq -floors 3 -close "12,40" -delay "7:30" -qw coffee
//
// Without -qw the query keywords are drawn from the generated vocabulary
// (the realistic case: users query words that exist in the venue's
// catalogue). With -real the simulated Hangzhou mall replaces the
// synthetic space. With -snapshot the engine is loaded from a file baked
// by `ikrqgen -snapshot` instead of being rebuilt (-floors/-real/-s2t are
// ignored; query points are sampled from the loaded space).
//
// -close and -delay overlay live venue conditions on the query without
// rebuilding anything: -close "3,17" closes doors 3 and 17, -delay
// "12:30,40:15.5" charges +30m per pass of door 12 and +15.5m for door 40.
//
// -legs switches to a sequence query: semicolon-separated legs of
// comma-separated keywords, visited in order. `ikrq -legs "coffee;phone,tv"`
// asks for routes that stop at a coffee place first and an electronics shop
// second (-alg is ignored; the sequence planner is its own algorithm).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ikrq"
	"ikrq/internal/cli"
)

func main() { os.Exit(run()) }

// run is the real entry point; every failure funnels through cli.Fail so
// bad flags exit 2 with a usage pointer and runtime failures exit 1, the
// convention shared by all ikrq commands.
func run() int {
	var (
		floors   = flag.Int("floors", 5, "synthetic space floors")
		real     = flag.Bool("real", false, "use the simulated Hangzhou mall")
		seed     = flag.Uint64("seed", 1, "generation seed")
		k        = flag.Int("k", 7, "result count")
		qwFlag   = flag.String("qw", "", "comma-separated query keywords (default: sampled)")
		qwLen    = flag.Int("qwlen", 4, "sampled keyword count when -qw is empty")
		beta     = flag.Float64("beta", 0.6, "i-word fraction for sampled keywords")
		s2t      = flag.Float64("s2t", 1500, "target start-terminal distance δs2t (m)")
		eta      = flag.Float64("eta", 1.6, "distance constraint factor: Δ = η·δ(ps,pt)")
		alpha    = flag.Float64("alpha", 0.5, "keyword/distance tradeoff α")
		tau      = flag.Float64("tau", 0.2, "candidate similarity threshold τ")
		algStr   = flag.String("alg", "ToE", "variant: "+cli.VariantList())
		stats    = flag.Bool("stats", false, "print search statistics")
		snap     = flag.String("snapshot", "", "serve from this baked snapshot instead of generating a space")
		closeStr = flag.String("close", "", "closed doors, e.g. \"3,17\"")
		delayStr = flag.String("delay", "", "door traversal penalties, e.g. \"12:30,40:15.5\" (meters per pass)")
		legsStr  = flag.String("legs", "", "sequence query: legs as \"kw,kw;kw\" visited in order (overrides -qw/-alg)")
		beam     = flag.Int("beam", 0, "sequence beam width (0: exact planner)")
	)
	flag.Parse()

	spec := cli.QuerySpec{
		Seed: *seed + 17, K: *k, QWLen: *qwLen, Beta: *beta,
		S2T: *s2t, Eta: *eta, Alpha: *alpha, Tau: *tau,
	}
	var (
		engine *ikrq.Engine
		req    ikrq.Request
		err    error
	)
	// Flag-syntax errors before any engine build: a bad -alg or -close
	// should fail fast, not after seconds of index derivation.
	_, opt, err := cli.ParseVariant(*algStr)
	if err != nil {
		return cli.Fail(os.Stderr, "ikrq", err)
	}
	cond, err := cli.ParseConditions(*closeStr, *delayStr)
	if err != nil {
		return cli.Fail(os.Stderr, "ikrq", err)
	}

	if *snap != "" {
		engine, req, err = cli.SnapshotSetup(*snap, spec)
	} else {
		engine, req, err = cli.GeneratedSetup(*real, *floors, *seed, spec)
	}
	if err != nil {
		return cli.Fail(os.Stderr, "ikrq", err)
	}
	if *qwFlag != "" {
		req.QW = strings.Split(*qwFlag, ",")
	}
	req.Conditions = cond

	if *legsStr != "" {
		return runSequence(engine, req, *legsStr, *beam, *stats)
	}

	res, err := engine.Search(req, opt)
	if err != nil {
		return cli.Fail(os.Stderr, "ikrq", err)
	}

	fmt.Printf("IKRQ(ps=%v, pt=%v, Δ=%.0fm, QW=%v, k=%d) via %s\n",
		req.Ps, req.Pt, req.Delta, req.QW, req.K, *algStr)
	if !req.Conditions.Empty() {
		fmt.Printf("live %v\n", req.Conditions)
	}
	if len(res.Routes) == 0 {
		fmt.Println("no routes within the distance constraint")
		return cli.ExitOK
	}
	for i, r := range res.Routes {
		fmt.Printf("#%d  ψ=%.4f  ρ=%.3f  δ=%.1fm  %d doors\n",
			i+1, r.Psi, r.Rho, r.Dist, len(r.Doors))
		fmt.Printf("    %s\n", describeRoute(engine, &r))
	}
	if *stats {
		st := res.Stats
		backend := "none"
		if ds := engine.DistanceSourceIfReady(); ds != nil {
			backend = ds.Kind()
		}
		ms := engine.MemStats()
		fmt.Printf("stats: %v, pops=%d stamps=%d peakQ=%d pruned[R1=%d R2=%d R3=%d R4=%d R5=%d reg=%d Δ=%d closed=%d] backend=%s mem≈%.2fMB (heap %.2fMB, mapped %.2fMB)\n",
			st.Elapsed, st.Pops, st.StampsCreated, st.PeakQueue,
			st.PrunedRule1, st.PrunedRule2, st.PrunedRule3, st.PrunedRule4,
			st.PrunedRule5, st.PrunedRegularity, st.PrunedDelta, st.PrunedClosed,
			backend, float64(st.EstBytes)/(1<<20),
			float64(ms.HeapBytes)/(1<<20), float64(ms.MappedBytes)/(1<<20))
	}
	return cli.ExitOK
}

// runSequence runs one sequence query built from the -legs syntax over the
// same engine, geometry and overlay the plain path resolved.
func runSequence(engine *ikrq.Engine, req ikrq.Request, legsStr string, beam int, stats bool) int {
	var legs []ikrq.SequenceLeg
	for _, leg := range strings.Split(legsStr, ";") {
		var qw []string
		for _, w := range strings.Split(leg, ",") {
			if w = strings.TrimSpace(w); w != "" {
				qw = append(qw, w)
			}
		}
		if len(qw) == 0 {
			return cli.Fail(os.Stderr, "ikrq", cli.Usagef("-legs: empty leg in %q", legsStr))
		}
		legs = append(legs, ikrq.SequenceLeg{QW: qw})
	}
	sreq := ikrq.SequenceRequest{
		Ps: req.Ps, Pt: req.Pt, Delta: req.Delta, Legs: legs,
		K: req.K, Alpha: req.Alpha, Tau: req.Tau, Beam: beam,
		Conditions: req.Conditions,
	}
	res, err := engine.SearchSequence(sreq)
	if err != nil {
		return cli.Fail(os.Stderr, "ikrq", err)
	}

	fmt.Printf("IKRQ-seq(ps=%v, pt=%v, Δ=%.0fm, legs=%s, k=%d)\n",
		sreq.Ps, sreq.Pt, sreq.Delta, legsStr, sreq.K)
	if !sreq.Conditions.Empty() {
		fmt.Printf("live %v\n", sreq.Conditions)
	}
	if len(res.Routes) == 0 {
		fmt.Println("no routes within the distance constraint")
		return cli.ExitOK
	}
	for i, r := range res.Routes {
		fmt.Printf("#%d  ψ=%.4f  ρ=%.3f  δ=%.1fm  %d doors\n",
			i+1, r.Psi, r.Rho, r.Dist, len(r.Doors))
		for j, wp := range r.Waypoints {
			fmt.Printf("    leg %d: %s (ρ=%.3f)\n", j+1, partitionName(engine, wp), r.LegRho[j])
		}
		fmt.Printf("    %s\n", describePath(engine, r.Doors, r.Entered))
	}
	if stats {
		st := res.Stats
		fmt.Printf("stats: %v, dijkstras=%d prefixes=%d plans=%d prunedΔ=%d beamDropped=%d truncated=%v\n",
			st.Elapsed, st.Dijkstras, st.Prefixes, st.Plans,
			st.PrunedDelta, st.BeamDropped, st.Truncated)
	}
	return cli.ExitOK
}

// describeRoute renders a route as ps →(partition)→ door →…→ pt with the
// named partitions it visits.
func describeRoute(e *ikrq.Engine, r *ikrq.Route) string {
	return describePath(e, r.Doors, r.Entered)
}

func describePath(e *ikrq.Engine, doors []ikrq.DoorID, entered []ikrq.PartitionID) string {
	var b strings.Builder
	b.WriteString("ps")
	for i, d := range doors {
		fmt.Fprintf(&b, " →d%d[%s]", d, partitionName(e, entered[i]))
	}
	b.WriteString(" → pt")
	return b.String()
}

// partitionName prefers the partition's i-word (its brand) over the raw name.
func partitionName(e *ikrq.Engine, p ikrq.PartitionID) string {
	part := e.Space().Partition(p)
	name := part.Name
	if w := e.Keywords().P2I(part.ID); w >= 0 {
		name = e.Keywords().IWord(w)
	}
	return name
}
