// Command ikrq runs a single IKRQ query against a generated mall and
// prints the returned routes.
//
// Usage:
//
//	ikrq -floors 5 -seed 1 -k 7 -qw "coffee,latte" -alg KoE -eta 1.6
//
// Without -qw the query keywords are drawn from the generated vocabulary
// (the realistic case: users query words that exist in the venue's
// catalogue). With -real the simulated Hangzhou mall replaces the
// synthetic space.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ikrq"
	"ikrq/internal/gen"
	"ikrq/internal/search"
)

func main() {
	var (
		floors = flag.Int("floors", 5, "synthetic space floors")
		real   = flag.Bool("real", false, "use the simulated Hangzhou mall")
		seed   = flag.Uint64("seed", 1, "generation seed")
		k      = flag.Int("k", 7, "result count")
		qwFlag = flag.String("qw", "", "comma-separated query keywords (default: sampled)")
		qwLen  = flag.Int("qwlen", 4, "sampled keyword count when -qw is empty")
		beta   = flag.Float64("beta", 0.6, "i-word fraction for sampled keywords")
		s2t    = flag.Float64("s2t", 1500, "target start-terminal distance δs2t (m)")
		eta    = flag.Float64("eta", 1.6, "distance constraint factor: Δ = η·δ(ps,pt)")
		alpha  = flag.Float64("alpha", 0.5, "keyword/distance tradeoff α")
		tau    = flag.Float64("tau", 0.2, "candidate similarity threshold τ")
		algStr = flag.String("alg", "ToE", "variant: "+variantList())
		stats  = flag.Bool("stats", false, "print search statistics")
	)
	flag.Parse()

	var (
		mall *ikrq.Mall
		voc  *ikrq.Vocabulary
		idx  *ikrq.KeywordIndex
		err  error
	)
	if *real {
		mall, voc, idx, err = ikrq.NewRealMall(*seed)
	} else {
		mall, voc, idx, err = ikrq.NewSyntheticMall(*floors, *seed)
	}
	if err != nil {
		fatal(err)
	}
	engine := ikrq.NewEngine(mall.Space, idx)
	qgen := ikrq.NewQueryGen(mall, idx, voc, engine, *seed+17)

	cfg := gen.DefaultQueryConfig(*seed + 17)
	cfg.K = *k
	cfg.QWLen = *qwLen
	cfg.Beta = *beta
	cfg.S2T = *s2t
	cfg.Eta = *eta
	cfg.Alpha = *alpha
	cfg.Tau = *tau
	req, err := qgen.Instance(cfg)
	if err != nil {
		fatal(err)
	}
	if *qwFlag != "" {
		req.QW = strings.Split(*qwFlag, ",")
	}

	opt, err := ikrq.OptionsFor(ikrq.Variant(*algStr))
	if err != nil {
		fatal(err)
	}
	res, err := engine.Search(req, opt)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("IKRQ(ps=%v, pt=%v, Δ=%.0fm, QW=%v, k=%d) via %s\n",
		req.Ps, req.Pt, req.Delta, req.QW, req.K, *algStr)
	if len(res.Routes) == 0 {
		fmt.Println("no routes within the distance constraint")
		return
	}
	for i, r := range res.Routes {
		fmt.Printf("#%d  ψ=%.4f  ρ=%.3f  δ=%.1fm  %d doors\n",
			i+1, r.Psi, r.Rho, r.Dist, len(r.Doors))
		fmt.Printf("    %s\n", describeRoute(engine, &r))
	}
	if *stats {
		st := res.Stats
		fmt.Printf("stats: %v, pops=%d stamps=%d peakQ=%d pruned[R1=%d R2=%d R3=%d R4=%d R5=%d reg=%d Δ=%d] mem≈%.2fMB\n",
			st.Elapsed, st.Pops, st.StampsCreated, st.PeakQueue,
			st.PrunedRule1, st.PrunedRule2, st.PrunedRule3, st.PrunedRule4,
			st.PrunedRule5, st.PrunedRegularity, st.PrunedDelta,
			float64(st.EstBytes)/(1<<20))
	}
}

// describeRoute renders a route as ps →(partition)→ door →…→ pt with the
// named partitions it visits.
func describeRoute(e *ikrq.Engine, r *ikrq.Route) string {
	var b strings.Builder
	b.WriteString("ps")
	for i, d := range r.Doors {
		part := e.Space().Partition(r.Entered[i])
		name := part.Name
		if w := e.Keywords().P2I(part.ID); w >= 0 {
			name = e.Keywords().IWord(w)
		}
		fmt.Fprintf(&b, " →d%d[%s]", d, name)
	}
	b.WriteString(" → pt")
	return b.String()
}

func variantList() string {
	vs := search.Variants()
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = string(v)
	}
	return strings.Join(out, " ")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ikrq:", err)
	os.Exit(1)
}
