// Command ikrq runs a single IKRQ query against a generated mall — or
// against a baked snapshot — and prints the returned routes.
//
// Usage:
//
//	ikrq -floors 5 -seed 1 -k 7 -qw "coffee,latte" -alg KoE -eta 1.6
//	ikrq -snapshot mall.ikrq -qw "coffee,latte" -alg "KoE*"
//
// Without -qw the query keywords are drawn from the generated vocabulary
// (the realistic case: users query words that exist in the venue's
// catalogue). With -real the simulated Hangzhou mall replaces the
// synthetic space. With -snapshot the engine is loaded from a file baked
// by `ikrqgen -snapshot` instead of being rebuilt (-floors/-real/-s2t are
// ignored; query points are sampled from the loaded space).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ikrq"
	"ikrq/internal/gen"
	"ikrq/internal/search"
)

func main() {
	var (
		floors = flag.Int("floors", 5, "synthetic space floors")
		real   = flag.Bool("real", false, "use the simulated Hangzhou mall")
		seed   = flag.Uint64("seed", 1, "generation seed")
		k      = flag.Int("k", 7, "result count")
		qwFlag = flag.String("qw", "", "comma-separated query keywords (default: sampled)")
		qwLen  = flag.Int("qwlen", 4, "sampled keyword count when -qw is empty")
		beta   = flag.Float64("beta", 0.6, "i-word fraction for sampled keywords")
		s2t    = flag.Float64("s2t", 1500, "target start-terminal distance δs2t (m)")
		eta    = flag.Float64("eta", 1.6, "distance constraint factor: Δ = η·δ(ps,pt)")
		alpha  = flag.Float64("alpha", 0.5, "keyword/distance tradeoff α")
		tau    = flag.Float64("tau", 0.2, "candidate similarity threshold τ")
		algStr = flag.String("alg", "ToE", "variant: "+variantList())
		stats  = flag.Bool("stats", false, "print search statistics")
		snap   = flag.String("snapshot", "", "serve from this baked snapshot instead of generating a space")
	)
	flag.Parse()

	var (
		engine *ikrq.Engine
		req    ikrq.Request
		err    error
	)
	if *snap != "" {
		engine, req, err = fromSnapshot(*snap, *seed, *k, *qwLen, *beta, *eta, *alpha, *tau)
	} else {
		engine, req, err = fromGenerated(*real, *floors, *seed, *k, *qwLen, *beta, *s2t, *eta, *alpha, *tau)
	}
	if err != nil {
		fatal(err)
	}
	if *qwFlag != "" {
		req.QW = strings.Split(*qwFlag, ",")
	}

	opt, err := ikrq.OptionsFor(ikrq.Variant(*algStr))
	if err != nil {
		fatal(err)
	}
	res, err := engine.Search(req, opt)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("IKRQ(ps=%v, pt=%v, Δ=%.0fm, QW=%v, k=%d) via %s\n",
		req.Ps, req.Pt, req.Delta, req.QW, req.K, *algStr)
	if len(res.Routes) == 0 {
		fmt.Println("no routes within the distance constraint")
		return
	}
	for i, r := range res.Routes {
		fmt.Printf("#%d  ψ=%.4f  ρ=%.3f  δ=%.1fm  %d doors\n",
			i+1, r.Psi, r.Rho, r.Dist, len(r.Doors))
		fmt.Printf("    %s\n", describeRoute(engine, &r))
	}
	if *stats {
		st := res.Stats
		fmt.Printf("stats: %v, pops=%d stamps=%d peakQ=%d pruned[R1=%d R2=%d R3=%d R4=%d R5=%d reg=%d Δ=%d] mem≈%.2fMB\n",
			st.Elapsed, st.Pops, st.StampsCreated, st.PeakQueue,
			st.PrunedRule1, st.PrunedRule2, st.PrunedRule3, st.PrunedRule4,
			st.PrunedRule5, st.PrunedRegularity, st.PrunedDelta,
			float64(st.EstBytes)/(1<<20))
	}
}

// fromGenerated builds the engine and query instance from a generated
// space, the original workflow.
func fromGenerated(real bool, floors int, seed uint64, k, qwLen int, beta, s2t, eta, alpha, tau float64) (*ikrq.Engine, ikrq.Request, error) {
	var (
		mall *ikrq.Mall
		voc  *ikrq.Vocabulary
		idx  *ikrq.KeywordIndex
		err  error
	)
	if real {
		mall, voc, idx, err = ikrq.NewRealMall(seed)
	} else {
		mall, voc, idx, err = ikrq.NewSyntheticMall(floors, seed)
	}
	if err != nil {
		return nil, ikrq.Request{}, err
	}
	engine := ikrq.NewEngine(mall.Space, idx)
	qgen := ikrq.NewQueryGen(mall, idx, voc, engine, seed+17)

	cfg := gen.DefaultQueryConfig(seed + 17)
	cfg.K = k
	cfg.QWLen = qwLen
	cfg.Beta = beta
	cfg.S2T = s2t
	cfg.Eta = eta
	cfg.Alpha = alpha
	cfg.Tau = tau
	req, err := qgen.Instance(cfg)
	return engine, req, err
}

// fromSnapshot loads a baked engine and samples a query from its index
// layer (no Mall/Vocabulary bookkeeping exists for a snapshot, so the
// δs2t-targeted generator does not apply; the sampler stretches the query
// across the space instead).
func fromSnapshot(path string, seed uint64, k, qwLen int, beta, eta, alpha, tau float64) (*ikrq.Engine, ikrq.Request, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, ikrq.Request{}, err
	}
	defer f.Close()
	engine, err := ikrq.LoadEngine(f)
	if err != nil {
		return nil, ikrq.Request{}, err
	}
	smp := gen.NewSampler(engine.Space(), engine.Keywords(), engine.PathFinder(), seed+17)
	cfg := gen.SampleConfig{K: k, QWLen: qwLen, Beta: beta, Eta: eta, Alpha: alpha, Tau: tau}
	req, err := smp.Instance(cfg)
	return engine, req, err
}

// describeRoute renders a route as ps →(partition)→ door →…→ pt with the
// named partitions it visits.
func describeRoute(e *ikrq.Engine, r *ikrq.Route) string {
	var b strings.Builder
	b.WriteString("ps")
	for i, d := range r.Doors {
		part := e.Space().Partition(r.Entered[i])
		name := part.Name
		if w := e.Keywords().P2I(part.ID); w >= 0 {
			name = e.Keywords().IWord(w)
		}
		fmt.Fprintf(&b, " →d%d[%s]", d, name)
	}
	b.WriteString(" → pt")
	return b.String()
}

func variantList() string {
	vs := search.Variants()
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = string(v)
	}
	return strings.Join(out, " ")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ikrq:", err)
	os.Exit(1)
}
