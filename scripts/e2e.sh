#!/usr/bin/env bash
# End-to-end serving gate: bake a synthetic snapshot, start ikrqd, query
# every Table III variant over real HTTP, and assert each returns 200 with
# exactly $K well-formed routes; then check error statuses, the loadgen
# self-test, and a clean SIGTERM drain. This is the first CI gate on the
# full bake -> serve -> query path a deployment depends on.
#
# Runs from the repo root: ./scripts/e2e.sh
# Needs: go, curl, jq.
set -euo pipefail

workdir=$(mktemp -d)
daemon_pid=""
sub_a_pid=""
sub_b_pid=""
cleanup() {
  [ -n "$sub_a_pid" ] && kill "$sub_a_pid" 2>/dev/null || true
  [ -n "$sub_b_pid" ] && kill "$sub_b_pid" 2>/dev/null || true
  [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build"
go build -o "$workdir/ikrqgen" ./cmd/ikrqgen
go build -o "$workdir/ikrqd" ./cmd/ikrqd

echo "== bake"
"$workdir/ikrqgen" -floors 2 -seed 1 -snapshot "$workdir/mall.ikrq" -matrix

# The generated vocabulary is seed-deterministic gibberish; pull the two
# most widely assigned t-words from the JSON dump of the same space so the
# query has real key partitions to route through.
"$workdir/ikrqgen" -floors 2 -seed 1 -json > "$workdir/mall.json"
readarray -t kws < <(jq -r '
  [.partitions[].twords // [] | .[]] | group_by(.) | sort_by(-length) | .[0:2][][0]
' "$workdir/mall.json")
[ "${#kws[@]}" = 2 ] || { echo "FAIL: could not extract two t-words"; exit 1; }
echo "query keywords: ${kws[*]}"

echo "== loadgen self-test (in-process HTTP stack, all variants)"
"$workdir/ikrqd" -venue mall="$workdir/mall.ikrq" -loadgen 8 -seed 7

echo "== serve"
port="${IKRQD_E2E_PORT:-18421}"
base="http://127.0.0.1:$port"
"$workdir/ikrqd" -listen "127.0.0.1:$port" -venue mall="$workdir/mall.ikrq" \
  -snapshot-root "$workdir" &
daemon_pid=$!

for i in $(seq 1 100); do
  curl -fsS "$base/healthz" >/dev/null 2>&1 && break
  kill -0 "$daemon_pid" 2>/dev/null || { echo "FAIL: daemon died during startup"; exit 1; }
  [ "$i" = 100 ] && { echo "FAIL: daemon never became healthy"; exit 1; }
  sleep 0.1
done
curl -fsS "$base/healthz" | jq -e '.status == "ok"' >/dev/null
echo "healthz ok"

# A query wide enough that every variant fills k: hallway-to-hallway across
# both floors with a generous absolute distance budget. K must match the
# assertion below.
K=3
query() { # $1 = variant
  jq -n --arg variant "$1" --argjson k "$K" --arg kw1 "${kws[0]}" --arg kw2 "${kws[1]}" '{
    start:    {x: 3,   y: 3,  floor: 0},
    terminal: {x: 100, y: 60, floor: 1},
    keywords: [$kw1, $kw2],
    k:        $k,
    delta:    2200,
    alpha:    0.5,
    tau:      0.2,
    variant:  $variant
  }'
}

echo "== query every Table III variant"
for variant in 'ToE' 'ToE\D' 'ToE\B' 'ToE\P' 'KoE' 'KoE\D' 'KoE\B' 'KoE*'; do
  body=$(query "$variant")
  resp_file="$workdir/resp.json"
  status=$(curl -sS -o "$resp_file" -w '%{http_code}' \
    -X POST -H 'Content-Type: application/json' \
    -d "$body" "$base/v1/venues/mall/query")
  if [ "$status" != 200 ]; then
    echo "FAIL: $variant -> HTTP $status: $(cat "$resp_file")"
    exit 1
  fi
  # Exactly k routes, each well-formed: non-empty door list, matching
  # entered-partition list, positive distance within the budget, and a
  # sims vector sized to the query keywords.
  jq -e --arg variant "$variant" --argjson k "$K" '
    (.variant == $variant) and
    (.routes | length == $k) and
    (.delta as $delta | [.routes[] | select(
        ((.doors | length) > 0) and
        ((.entered | length) == (.doors | length)) and
        (.dist > 0 and .dist <= $delta) and
        ((.sims | length) == 2) and
        ((.psi | type) == "number")
      )] | length == $k)
  ' "$resp_file" >/dev/null || {
    echo "FAIL: $variant returned a malformed result: $(cat "$resp_file")"
    exit 1
  }
  echo "$variant: 200, $K well-formed routes"
done

echo "== result cache"
# A repeated identical query must be served from the cache: the hit counter
# rises and the body is byte-identical to the first answer (including the
# stats, which a hit replays from the original run).
cache_body=$(query ToE)
curl -sS -X POST -H 'Content-Type: application/json' \
  -d "$cache_body" "$base/v1/venues/mall/query" -o "$workdir/cache1.json"
hits_before=$(curl -fsS "$base/debug/vars" | jq '.result_cache.hits')
curl -sS -X POST -H 'Content-Type: application/json' \
  -d "$cache_body" "$base/v1/venues/mall/query" -o "$workdir/cache2.json"
hits_after=$(curl -fsS "$base/debug/vars" | jq '.result_cache.hits')
cmp -s "$workdir/cache1.json" "$workdir/cache2.json" || {
  echo "FAIL: cached repeat body differs from the first answer"
  diff "$workdir/cache1.json" "$workdir/cache2.json" || true
  exit 1
}
[ "$hits_after" -gt "$hits_before" ] || {
  echo "FAIL: repeated query did not hit the cache ($hits_before -> $hits_after)"; exit 1; }
# Mutating the conditions overlay is a different query: it must miss.
misses_before=$(curl -fsS "$base/debug/vars" | jq '.result_cache.misses')
echo "$cache_body" | jq '. + {conditions: {delay: {"0": 5}}}' > "$workdir/cachemut.json"
curl -sS -X POST -H 'Content-Type: application/json' \
  -d @"$workdir/cachemut.json" "$base/v1/venues/mall/query" -o /dev/null
misses_after=$(curl -fsS "$base/debug/vars" | jq '.result_cache.misses')
[ "$misses_after" -gt "$misses_before" ] || {
  echo "FAIL: conditions mutation did not miss ($misses_before -> $misses_after)"; exit 1; }
curl -fsS "$base/v1/venues" | jq -e '.venues[0].result_cache.hits >= 1' >/dev/null || {
  echo "FAIL: /v1/venues does not carry per-venue cache counters"; exit 1; }
echo "cache: byte-identical hit, conditions-mutation miss, counters exported"

echo "== error statuses"
st=$(curl -sS -o /dev/null -w '%{http_code}' -X POST -d "$(query ToE)" "$base/v1/venues/atlantis/query")
[ "$st" = 404 ] || { echo "FAIL: unknown venue -> $st, want 404"; exit 1; }
st=$(curl -sS -o /dev/null -w '%{http_code}' -X POST -d '{"broken' "$base/v1/venues/mall/query")
[ "$st" = 400 ] || { echo "FAIL: malformed body -> $st, want 400"; exit 1; }
curl -fsS "$base/debug/vars" | jq -e '.queries.ok >= 8' >/dev/null || {
  echo "FAIL: /debug/vars did not count the served queries"; exit 1; }
echo "404/400/vars ok"

echo "== hot snapshot swap under load"
# Re-bake the same space to a second file, then swap the live venue onto it
# while a query loop runs: every query across the swap must answer 200 —
# in-flight searches drain on the engine they acquired, later arrivals see
# the new bake.
"$workdir/ikrqgen" -floors 2 -seed 1 -snapshot "$workdir/mall-rebake.ikrq" -matrix
# Also re-bake the serving path itself: ikrqgen replaces it atomically
# (temp file + rename), so the daemon's live mmap keeps serving the old
# inode untouched — queries must stay 200 throughout (DESIGN.md §13).
"$workdir/ikrqgen" -floors 2 -seed 1 -snapshot "$workdir/mall.ikrq" -matrix
swap_statuses="$workdir/swap_statuses"
: > "$swap_statuses"
(
  for i in $(seq 1 40); do
    # A fresh conditions overlay per iteration bypasses the result cache,
    # so every request exercises a real search on whichever engine is live.
    echo "$cache_body" | jq --argjson i "$i" '. + {conditions: {delay: {"0": $i}}}' |
      curl -sS -o /dev/null -w '%{http_code}\n' \
        -X POST -H 'Content-Type: application/json' \
        -d @- "$base/v1/venues/mall/query" >> "$swap_statuses" || echo curlfail >> "$swap_statuses"
  done
) &
load_pid=$!
sleep 0.2
st=$(curl -sS -o "$workdir/reload.json" -w '%{http_code}' \
  -X POST -H 'Content-Type: application/json' \
  -d '{"path": "mall-rebake.ikrq"}' "$base/v1/venues/mall/reload")
[ "$st" = 200 ] || { echo "FAIL: reload -> HTTP $st: $(cat "$workdir/reload.json")"; exit 1; }
jq -e '.venue == "mall" and .load_ms >= 0' "$workdir/reload.json" >/dev/null || {
  echo "FAIL: malformed reload response: $(cat "$workdir/reload.json")"; exit 1; }
wait "$load_pid"
[ "$(wc -l < "$swap_statuses")" = 40 ] || {
  echo "FAIL: swap load loop ran $(wc -l < "$swap_statuses")/40 queries"; exit 1; }
bad=$(grep -cv '^200$' "$swap_statuses" || true)
[ "$bad" = 0 ] || {
  echo "FAIL: $bad queries failed across the swap:"; sort "$swap_statuses" | uniq -c; exit 1; }
curl -fsS "$base/debug/vars" | jq -e '.registry.reloads >= 1' >/dev/null || {
  echo "FAIL: /debug/vars did not count the reload"; exit 1; }
st=$(curl -sS -o /dev/null -w '%{http_code}' -X POST \
  -d '{"path": "nonexistent.ikrq"}' "$base/v1/venues/mall/reload")
[ "$st" = 503 ] || { echo "FAIL: reload of a missing file -> $st, want 503"; exit 1; }
# Overrides outside -snapshot-root (absolute or ..-escaping) are refused
# before the loader ever sees them.
st=$(curl -sS -o /dev/null -w '%{http_code}' -X POST \
  -d '{"path": "/etc/passwd"}' "$base/v1/venues/mall/reload")
[ "$st" = 403 ] || { echo "FAIL: absolute reload path -> $st, want 403"; exit 1; }
st=$(curl -sS -o /dev/null -w '%{http_code}' -X POST \
  -d '{"path": "../escape.ikrq"}' "$base/v1/venues/mall/reload")
[ "$st" = 403 ] || { echo "FAIL: escaping reload path -> $st, want 403"; exit 1; }
echo "swap: 40/40 queries 200 across the reload, failed reload left venue serving, escapes 403"

echo "== v2 sequence query"
# An ordered two-leg itinerary through the same baked mall: one waypoint
# per leg, visited in request order (entered-partition positions prove it).
seq_body=$(jq -n --arg kw1 "${kws[0]}" --arg kw2 "${kws[1]}" '{
  type: "sequence",
  start:    {x: 3,   y: 3,  floor: 0},
  terminal: {x: 100, y: 60, floor: 1},
  legs:     [{keywords: [$kw1]}, {keywords: [$kw2]}],
  k: 3, delta: 2200, alpha: 0.5, tau: 0.2
}')
st=$(curl -sS -o "$workdir/seq.json" -w '%{http_code}' \
  -X POST -H 'Content-Type: application/json' \
  -d "$seq_body" "$base/v2/venues/mall/query")
[ "$st" = 200 ] || { echo "FAIL: sequence query -> HTTP $st: $(cat "$workdir/seq.json")"; exit 1; }
# Leg order on the walk: waypoint 1's entry position precedes waypoint
# 2's. A waypoint absent from `entered` is the in-place case (the leg is
# satisfied by the partition the walk is already inside, e.g. the start's
# host) and anchors at its predecessor's position.
jq -e '
  (.routes | length) as $n |
  (.type == "sequence") and
  ($n > 0) and
  ([.routes[]
     | . as $r
     | (($r.entered | index($r.waypoints[0])) // -1) as $i0
     | (($r.entered | index($r.waypoints[1])) // $i0) as $i1
     | select(
        (($r.waypoints | length) == 2) and
        (($r.leg_rho  | length) == 2) and
        (($r.leg_sims | length) == 2) and
        ($i0 <= $i1) and
        ($r.dist > 0 and $r.dist <= 2200)
      )] | length == $n)
' "$workdir/seq.json" >/dev/null || {
  echo "FAIL: malformed sequence result: $(cat "$workdir/seq.json")"; exit 1; }
# The v2 envelope is strict: unknown fields and a missing type are 400s.
st=$(curl -sS -o /dev/null -w '%{http_code}' -X POST \
  -d "$(echo "$seq_body" | jq '. + {surprise: 1}')" "$base/v2/venues/mall/query")
[ "$st" = 400 ] || { echo "FAIL: unknown v2 field -> $st, want 400"; exit 1; }
st=$(curl -sS -o /dev/null -w '%{http_code}' -X POST \
  -d "$(echo "$seq_body" | jq 'del(.type)')" "$base/v2/venues/mall/query")
[ "$st" = 400 ] || { echo "FAIL: missing v2 discriminator -> $st, want 400"; exit 1; }
echo "sequence: 200, legs visited in order, strict envelope 400s"

echo "== conditions bus: publish + subscribe"
# Two subscribers on disjoint keyword routes. Closing a door on A's best
# route must push A exactly one re-route and push B nothing; the SSE event
# id is the conditions revision, so B's first push arriving with id 2
# proves revision 1 was (correctly) silent for it.
env_a=$(jq -n --arg kw "${kws[0]}" '{
  type: "route",
  start: {x: 3, y: 3, floor: 0}, terminal: {x: 100, y: 60, floor: 1},
  keywords: [$kw], k: 3, delta: 2200, alpha: 0.5, tau: 0.2
}')
env_b=$(jq -n --arg kw "${kws[1]}" '{
  type: "route",
  start: {x: 3, y: 3, floor: 0}, terminal: {x: 100, y: 60, floor: 1},
  keywords: [$kw], k: 3, delta: 2200, alpha: 0.5, tau: 0.2
}')
curl -sS -X POST -H 'Content-Type: application/json' \
  -d "$env_a" "$base/v2/venues/mall/query" -o "$workdir/a0.json"
curl -sS -X POST -H 'Content-Type: application/json' \
  -d "$env_b" "$base/v2/venues/mall/query" -o "$workdir/b0.json"
# door_a: on one of A's served routes but on none of B's (closing it must
# re-route A and cannot change B's top-k — closures only remove walks, and
# all of B's survive). If every A door is shared — e.g. A's keyword matches
# the start's host partition, so its routes are plain hallway walks — the
# roles swap: one side always detours through brand doors the other skips.
only_in() { # doors in $1's routes that are on none of $2's
  jq -n --argjson a "$(jq '[.routes[].doors[]] | unique' "$1")" \
        --argjson b "$(jq '[.routes[].doors[]] | unique' "$2")" \
        '[$a[] | select(. as $d | $b | index($d) | not)][0]'
}
door_a=$(only_in "$workdir/a0.json" "$workdir/b0.json")
if [ "$door_a" = "null" ]; then
  door_a=$(only_in "$workdir/b0.json" "$workdir/a0.json")
  tmp_env=$env_a; env_a=$env_b; env_b=$tmp_env
  mv "$workdir/a0.json" "$workdir/swap.json"
  mv "$workdir/b0.json" "$workdir/a0.json"
  mv "$workdir/swap.json" "$workdir/b0.json"
fi
[ "$door_a" != "null" ] && [ -n "$door_a" ] || {
  echo "FAIL: could not find a door unique to either subscriber's routes"; exit 1; }
# door_b: any door on one of B's served routes re-routes B when closed.
door_b=$(jq '.routes[0].doors[0]' "$workdir/b0.json")

curl -sN -X POST -H 'Content-Type: application/json' \
  -d "$env_a" "$base/v2/venues/mall/subscribe" > "$workdir/a_stream" &
sub_a_pid=$!
curl -sN -X POST -H 'Content-Type: application/json' \
  -d "$env_b" "$base/v2/venues/mall/subscribe" > "$workdir/b_stream" &
sub_b_pid=$!
wait_events() { # $1 = stream file, $2 = result-event count to wait for
  local n
  for i in $(seq 1 100); do
    n=$(grep -c '^event: result' "$1" 2>/dev/null || true)
    [ "${n:-0}" -ge "$2" ] && return 0
    sleep 0.1
  done
  echo "FAIL: $1 never reached $2 result events:"; cat "$1"; return 1
}
wait_events "$workdir/a_stream" 1
wait_events "$workdir/b_stream" 1

# Query load across the publish: zero dropped queries is the bar, same as
# the snapshot swap (distinct explicit overlays bypass cache and bus).
pub_statuses="$workdir/pub_statuses"
: > "$pub_statuses"
(
  for i in $(seq 1 20); do
    echo "$cache_body" | jq --argjson i "$i" '. + {conditions: {delay: {"1": $i}}}' |
      curl -sS -o /dev/null -w '%{http_code}\n' \
        -X POST -H 'Content-Type: application/json' \
        -d @- "$base/v1/venues/mall/query" >> "$pub_statuses" || echo curlfail >> "$pub_statuses"
  done
) &
pub_load_pid=$!

st=$(curl -sS -o "$workdir/pub1.json" -w '%{http_code}' -X PUT \
  -H 'Content-Type: application/json' \
  -d "{\"close\": [$door_a]}" "$base/v2/venues/mall/conditions")
[ "$st" = 200 ] || { echo "FAIL: publish -> HTTP $st: $(cat "$workdir/pub1.json")"; exit 1; }
jq -e '.venue == "mall" and .revision == 1 and .closed == 1' "$workdir/pub1.json" >/dev/null || {
  echo "FAIL: malformed publish response: $(cat "$workdir/pub1.json")"; exit 1; }

wait_events "$workdir/a_stream" 2
# A's re-route equals a fresh v2 query under the published revision.
grep '^data: ' "$workdir/a_stream" | sed -n '2p' | cut -c7- | jq '.routes' > "$workdir/push_routes.json"
curl -sS -X POST -H 'Content-Type: application/json' \
  -d "$env_a" "$base/v2/venues/mall/query" | jq '.routes' > "$workdir/fresh_routes.json"
cmp -s "$workdir/push_routes.json" "$workdir/fresh_routes.json" || {
  echo "FAIL: pushed re-route differs from a fresh query:"
  diff "$workdir/push_routes.json" "$workdir/fresh_routes.json" || true
  exit 1
}
# Closing a door on B's route (revision 2) is B's first push: its id
# sequence 0,2 proves revision 1 pushed nothing to the unaffected route.
st=$(curl -sS -o /dev/null -w '%{http_code}' -X PUT \
  -d "{\"close\": [$door_b]}" "$base/v2/venues/mall/conditions")
[ "$st" = 200 ] || { echo "FAIL: second publish -> HTTP $st"; exit 1; }
wait_events "$workdir/b_stream" 2
b_ids=$(grep '^id: ' "$workdir/b_stream" | awk '{print $2}' | paste -sd, -)
[ "$b_ids" = "0,2" ] || {
  echo "FAIL: B's event ids are [$b_ids], want [0,2]:"; cat "$workdir/b_stream"; exit 1; }
a_ids=$(grep '^id: ' "$workdir/a_stream" | awk '{print $2}' | head -2 | paste -sd, -)
[ "$a_ids" = "0,1" ] || {
  echo "FAIL: A's first event ids are [$a_ids], want [0,1]:"; cat "$workdir/a_stream"; exit 1; }

wait "$pub_load_pid"
[ "$(wc -l < "$pub_statuses")" = 20 ] || {
  echo "FAIL: publish load loop ran $(wc -l < "$pub_statuses")/20 queries"; exit 1; }
bad=$(grep -cv '^200$' "$pub_statuses" || true)
[ "$bad" = 0 ] || {
  echo "FAIL: $bad queries failed across the publishes:"; sort "$pub_statuses" | uniq -c; exit 1; }
curl -fsS "$base/debug/vars" | jq -e '.bus.publishes >= 2 and .bus.pushes >= 2' >/dev/null || {
  echo "FAIL: /debug/vars does not carry bus counters"; exit 1; }
# Clear the published overlay and release the streams.
st=$(curl -sS -o /dev/null -w '%{http_code}' -X PUT -d '' "$base/v2/venues/mall/conditions")
[ "$st" = 200 ] || { echo "FAIL: clearing publish -> HTTP $st"; exit 1; }
kill "$sub_a_pid" "$sub_b_pid" 2>/dev/null || true
wait "$sub_a_pid" 2>/dev/null || true
wait "$sub_b_pid" 2>/dev/null || true
echo "bus: one re-route for the affected route, id-fenced silence for the other, 20/20 queries 200 across publishes"

echo "== graceful drain"
kill -TERM "$daemon_pid"
for i in $(seq 1 100); do
  kill -0 "$daemon_pid" 2>/dev/null || break
  [ "$i" = 100 ] && { echo "FAIL: daemon still running after SIGTERM"; exit 1; }
  sleep 0.1
done
wait "$daemon_pid" && rc=0 || rc=$?
daemon_pid=""
[ "$rc" = 0 ] || { echo "FAIL: daemon exited $rc after SIGTERM, want 0"; exit 1; }
echo "drained cleanly"

echo "== loadgen zipf mix (skewed repeats; cache hit rate)"
zipf_out=$("$workdir/ikrqd" -venue mall="$workdir/mall.ikrq" -loadgen 64 -seed 7 -mix zipf)
echo "$zipf_out"
grep -q "hit rate" <<<"$zipf_out" || { echo "FAIL: zipf loadgen reported no hit rate"; exit 1; }
grep -q "hit rate 0.0%" <<<"$zipf_out" && { echo "FAIL: zipf mix produced no cache hits"; exit 1; }

echo "e2e: all green"
