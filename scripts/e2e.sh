#!/usr/bin/env bash
# End-to-end serving gate: bake a synthetic snapshot, start ikrqd, query
# every Table III variant over real HTTP, and assert each returns 200 with
# exactly $K well-formed routes; then check error statuses, the loadgen
# self-test, and a clean SIGTERM drain. This is the first CI gate on the
# full bake -> serve -> query path a deployment depends on.
#
# Runs from the repo root: ./scripts/e2e.sh
# Needs: go, curl, jq.
set -euo pipefail

workdir=$(mktemp -d)
daemon_pid=""
cleanup() {
  [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build"
go build -o "$workdir/ikrqgen" ./cmd/ikrqgen
go build -o "$workdir/ikrqd" ./cmd/ikrqd

echo "== bake"
"$workdir/ikrqgen" -floors 2 -seed 1 -snapshot "$workdir/mall.ikrq" -matrix

# The generated vocabulary is seed-deterministic gibberish; pull the two
# most widely assigned t-words from the JSON dump of the same space so the
# query has real key partitions to route through.
"$workdir/ikrqgen" -floors 2 -seed 1 -json > "$workdir/mall.json"
readarray -t kws < <(jq -r '
  [.partitions[].twords // [] | .[]] | group_by(.) | sort_by(-length) | .[0:2][][0]
' "$workdir/mall.json")
[ "${#kws[@]}" = 2 ] || { echo "FAIL: could not extract two t-words"; exit 1; }
echo "query keywords: ${kws[*]}"

echo "== loadgen self-test (in-process HTTP stack, all variants)"
"$workdir/ikrqd" -venue mall="$workdir/mall.ikrq" -loadgen 8 -seed 7

echo "== serve"
port="${IKRQD_E2E_PORT:-18421}"
base="http://127.0.0.1:$port"
"$workdir/ikrqd" -listen "127.0.0.1:$port" -venue mall="$workdir/mall.ikrq" \
  -snapshot-root "$workdir" &
daemon_pid=$!

for i in $(seq 1 100); do
  curl -fsS "$base/healthz" >/dev/null 2>&1 && break
  kill -0 "$daemon_pid" 2>/dev/null || { echo "FAIL: daemon died during startup"; exit 1; }
  [ "$i" = 100 ] && { echo "FAIL: daemon never became healthy"; exit 1; }
  sleep 0.1
done
curl -fsS "$base/healthz" | jq -e '.status == "ok"' >/dev/null
echo "healthz ok"

# A query wide enough that every variant fills k: hallway-to-hallway across
# both floors with a generous absolute distance budget. K must match the
# assertion below.
K=3
query() { # $1 = variant
  jq -n --arg variant "$1" --argjson k "$K" --arg kw1 "${kws[0]}" --arg kw2 "${kws[1]}" '{
    start:    {x: 3,   y: 3,  floor: 0},
    terminal: {x: 100, y: 60, floor: 1},
    keywords: [$kw1, $kw2],
    k:        $k,
    delta:    2200,
    alpha:    0.5,
    tau:      0.2,
    variant:  $variant
  }'
}

echo "== query every Table III variant"
for variant in 'ToE' 'ToE\D' 'ToE\B' 'ToE\P' 'KoE' 'KoE\D' 'KoE\B' 'KoE*'; do
  body=$(query "$variant")
  resp_file="$workdir/resp.json"
  status=$(curl -sS -o "$resp_file" -w '%{http_code}' \
    -X POST -H 'Content-Type: application/json' \
    -d "$body" "$base/v1/venues/mall/query")
  if [ "$status" != 200 ]; then
    echo "FAIL: $variant -> HTTP $status: $(cat "$resp_file")"
    exit 1
  fi
  # Exactly k routes, each well-formed: non-empty door list, matching
  # entered-partition list, positive distance within the budget, and a
  # sims vector sized to the query keywords.
  jq -e --arg variant "$variant" --argjson k "$K" '
    (.variant == $variant) and
    (.routes | length == $k) and
    (.delta as $delta | [.routes[] | select(
        ((.doors | length) > 0) and
        ((.entered | length) == (.doors | length)) and
        (.dist > 0 and .dist <= $delta) and
        ((.sims | length) == 2) and
        ((.psi | type) == "number")
      )] | length == $k)
  ' "$resp_file" >/dev/null || {
    echo "FAIL: $variant returned a malformed result: $(cat "$resp_file")"
    exit 1
  }
  echo "$variant: 200, $K well-formed routes"
done

echo "== result cache"
# A repeated identical query must be served from the cache: the hit counter
# rises and the body is byte-identical to the first answer (including the
# stats, which a hit replays from the original run).
cache_body=$(query ToE)
curl -sS -X POST -H 'Content-Type: application/json' \
  -d "$cache_body" "$base/v1/venues/mall/query" -o "$workdir/cache1.json"
hits_before=$(curl -fsS "$base/debug/vars" | jq '.result_cache.hits')
curl -sS -X POST -H 'Content-Type: application/json' \
  -d "$cache_body" "$base/v1/venues/mall/query" -o "$workdir/cache2.json"
hits_after=$(curl -fsS "$base/debug/vars" | jq '.result_cache.hits')
cmp -s "$workdir/cache1.json" "$workdir/cache2.json" || {
  echo "FAIL: cached repeat body differs from the first answer"
  diff "$workdir/cache1.json" "$workdir/cache2.json" || true
  exit 1
}
[ "$hits_after" -gt "$hits_before" ] || {
  echo "FAIL: repeated query did not hit the cache ($hits_before -> $hits_after)"; exit 1; }
# Mutating the conditions overlay is a different query: it must miss.
misses_before=$(curl -fsS "$base/debug/vars" | jq '.result_cache.misses')
echo "$cache_body" | jq '. + {conditions: {delay: {"0": 5}}}' > "$workdir/cachemut.json"
curl -sS -X POST -H 'Content-Type: application/json' \
  -d @"$workdir/cachemut.json" "$base/v1/venues/mall/query" -o /dev/null
misses_after=$(curl -fsS "$base/debug/vars" | jq '.result_cache.misses')
[ "$misses_after" -gt "$misses_before" ] || {
  echo "FAIL: conditions mutation did not miss ($misses_before -> $misses_after)"; exit 1; }
curl -fsS "$base/v1/venues" | jq -e '.venues[0].result_cache.hits >= 1' >/dev/null || {
  echo "FAIL: /v1/venues does not carry per-venue cache counters"; exit 1; }
echo "cache: byte-identical hit, conditions-mutation miss, counters exported"

echo "== error statuses"
st=$(curl -sS -o /dev/null -w '%{http_code}' -X POST -d "$(query ToE)" "$base/v1/venues/atlantis/query")
[ "$st" = 404 ] || { echo "FAIL: unknown venue -> $st, want 404"; exit 1; }
st=$(curl -sS -o /dev/null -w '%{http_code}' -X POST -d '{"broken' "$base/v1/venues/mall/query")
[ "$st" = 400 ] || { echo "FAIL: malformed body -> $st, want 400"; exit 1; }
curl -fsS "$base/debug/vars" | jq -e '.queries.ok >= 8' >/dev/null || {
  echo "FAIL: /debug/vars did not count the served queries"; exit 1; }
echo "404/400/vars ok"

echo "== hot snapshot swap under load"
# Re-bake the same space to a second file, then swap the live venue onto it
# while a query loop runs: every query across the swap must answer 200 —
# in-flight searches drain on the engine they acquired, later arrivals see
# the new bake.
"$workdir/ikrqgen" -floors 2 -seed 1 -snapshot "$workdir/mall-rebake.ikrq" -matrix
# Also re-bake the serving path itself: ikrqgen replaces it atomically
# (temp file + rename), so the daemon's live mmap keeps serving the old
# inode untouched — queries must stay 200 throughout (DESIGN.md §13).
"$workdir/ikrqgen" -floors 2 -seed 1 -snapshot "$workdir/mall.ikrq" -matrix
swap_statuses="$workdir/swap_statuses"
: > "$swap_statuses"
(
  for i in $(seq 1 40); do
    # A fresh conditions overlay per iteration bypasses the result cache,
    # so every request exercises a real search on whichever engine is live.
    echo "$cache_body" | jq --argjson i "$i" '. + {conditions: {delay: {"0": $i}}}' |
      curl -sS -o /dev/null -w '%{http_code}\n' \
        -X POST -H 'Content-Type: application/json' \
        -d @- "$base/v1/venues/mall/query" >> "$swap_statuses" || echo curlfail >> "$swap_statuses"
  done
) &
load_pid=$!
sleep 0.2
st=$(curl -sS -o "$workdir/reload.json" -w '%{http_code}' \
  -X POST -H 'Content-Type: application/json' \
  -d '{"path": "mall-rebake.ikrq"}' "$base/v1/venues/mall/reload")
[ "$st" = 200 ] || { echo "FAIL: reload -> HTTP $st: $(cat "$workdir/reload.json")"; exit 1; }
jq -e '.venue == "mall" and .load_ms >= 0' "$workdir/reload.json" >/dev/null || {
  echo "FAIL: malformed reload response: $(cat "$workdir/reload.json")"; exit 1; }
wait "$load_pid"
[ "$(wc -l < "$swap_statuses")" = 40 ] || {
  echo "FAIL: swap load loop ran $(wc -l < "$swap_statuses")/40 queries"; exit 1; }
bad=$(grep -cv '^200$' "$swap_statuses" || true)
[ "$bad" = 0 ] || {
  echo "FAIL: $bad queries failed across the swap:"; sort "$swap_statuses" | uniq -c; exit 1; }
curl -fsS "$base/debug/vars" | jq -e '.registry.reloads >= 1' >/dev/null || {
  echo "FAIL: /debug/vars did not count the reload"; exit 1; }
st=$(curl -sS -o /dev/null -w '%{http_code}' -X POST \
  -d '{"path": "nonexistent.ikrq"}' "$base/v1/venues/mall/reload")
[ "$st" = 503 ] || { echo "FAIL: reload of a missing file -> $st, want 503"; exit 1; }
# Overrides outside -snapshot-root (absolute or ..-escaping) are refused
# before the loader ever sees them.
st=$(curl -sS -o /dev/null -w '%{http_code}' -X POST \
  -d '{"path": "/etc/passwd"}' "$base/v1/venues/mall/reload")
[ "$st" = 403 ] || { echo "FAIL: absolute reload path -> $st, want 403"; exit 1; }
st=$(curl -sS -o /dev/null -w '%{http_code}' -X POST \
  -d '{"path": "../escape.ikrq"}' "$base/v1/venues/mall/reload")
[ "$st" = 403 ] || { echo "FAIL: escaping reload path -> $st, want 403"; exit 1; }
echo "swap: 40/40 queries 200 across the reload, failed reload left venue serving, escapes 403"

echo "== graceful drain"
kill -TERM "$daemon_pid"
for i in $(seq 1 100); do
  kill -0 "$daemon_pid" 2>/dev/null || break
  [ "$i" = 100 ] && { echo "FAIL: daemon still running after SIGTERM"; exit 1; }
  sleep 0.1
done
wait "$daemon_pid" && rc=0 || rc=$?
daemon_pid=""
[ "$rc" = 0 ] || { echo "FAIL: daemon exited $rc after SIGTERM, want 0"; exit 1; }
echo "drained cleanly"

echo "== loadgen zipf mix (skewed repeats; cache hit rate)"
zipf_out=$("$workdir/ikrqd" -venue mall="$workdir/mall.ikrq" -loadgen 64 -seed 7 -mix zipf)
echo "$zipf_out"
grep -q "hit rate" <<<"$zipf_out" || { echo "FAIL: zipf loadgen reported no hit rate"; exit 1; }
grep -q "hit rate 0.0%" <<<"$zipf_out" && { echo "FAIL: zipf mix produced no cache hits"; exit 1; }

echo "e2e: all green"
