// Serving: the bake → serve → query lifecycle in one process.
//
// The example builds a small venue, bakes it to a snapshot file (what
// `ikrqgen -snapshot` does at scale), registers it in a venue registry,
// starts the HTTP serving layer on a loopback listener (what `ikrqd`
// does), and then acts as its own client: a query over HTTP, a live
// closure overlay on the same venue, a look at the ops endpoints, and a
// graceful drain.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"ikrq"
)

func main() {
	// ---- Build a venue: one corridor of three cells, a café and a
	// bookstore hanging off it.
	b := ikrq.NewSpaceBuilder()
	var hall [3]ikrq.PartitionID
	for i := range hall {
		hall[i] = b.AddPartition(fmt.Sprintf("hall-%d", i), ikrq.KindHallway,
			ikrq.Rect(float64(20*i), 0, float64(20*i+20), 10, 0))
	}
	cafe := b.AddPartition("cafe", ikrq.KindRoom, ikrq.Rect(10, 10, 30, 20, 0))
	books := b.AddPartition("bookstore", ikrq.KindRoom, ikrq.Rect(30, 10, 50, 20, 0))
	b.AddDoor(ikrq.At(20, 5, 0), hall[0], hall[1])
	b.AddDoor(ikrq.At(40, 5, 0), hall[1], hall[2])
	cafeDoor := b.AddDoor(ikrq.At(20, 10, 0), hall[1], cafe)
	b.AddDoor(ikrq.At(40, 10, 0), hall[2], books)

	space, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	kb := ikrq.NewKeywordBuilder(space.NumPartitions())
	kb.AssignPartition(cafe, kb.DefineIWord("cafe", []string{"coffee", "espresso"}))
	kb.AssignPartition(books, kb.DefineIWord("bookstore", []string{"books", "maps"}))
	index, err := kb.Build()
	if err != nil {
		log.Fatal(err)
	}

	// ---- Bake: engine (with the KoE* matrix) to a snapshot file.
	dir, err := os.MkdirTemp("", "ikrq-serving")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	snap := filepath.Join(dir, "demo.ikrq")
	eng := ikrq.NewEngine(space, index)
	eng.PrecomputeMatrix()
	f, err := os.Create(snap)
	if err != nil {
		log.Fatal(err)
	}
	if err := ikrq.SaveSnapshot(f, eng); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("baked venue to", snap)

	// ---- Serve: registry + HTTP layer on a loopback listener.
	reg := ikrq.NewVenueRegistry(0)
	if err := reg.Add(ikrq.VenueConfig{Name: "demo", Path: snap}); err != nil {
		log.Fatal(err)
	}
	srv := ikrq.NewServer(reg, ikrq.ServerConfig{QueryTimeout: 2 * time.Second})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	base := "http://" + l.Addr().String()
	fmt.Println("serving on", base)

	// ---- Query over HTTP, then the same query with the café door closed.
	query := ikrq.QueryRequest{
		Start:    ikrq.PointWire{X: 2, Y: 5, Floor: 0},
		Terminal: ikrq.PointWire{X: 58, Y: 5, Floor: 0},
		Keywords: []string{"coffee", "books"},
		K:        2,
		Eta:      2.0,
		Alpha:    0.5,
		Tau:      0.2,
		Variant:  "KoE*",
	}
	show(base, "normal day", query)

	query.Conditions = &ikrq.ConditionsWire{Close: []int{int(cafeDoor)}}
	show(base, "cafe closed", query)

	// ---- Ops endpoints.
	for _, ep := range []string{"/healthz", "/v1/venues"} {
		resp, err := http.Get(base + ep)
		if err != nil {
			log.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		fmt.Printf("%s -> %s", ep, body)
	}

	// ---- Drain and exit.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	if err := <-done; err != http.ErrServerClosed {
		log.Fatal(err)
	}
	fmt.Println("drained cleanly")
}

// show posts one query and prints the ranked routes.
func show(base, label string, q ikrq.QueryRequest) {
	payload, err := json.Marshal(q)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/venues/demo/query", "application/json", bytes.NewReader(payload))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		log.Fatalf("%s: HTTP %d: %s", label, resp.StatusCode, body)
	}
	var out ikrq.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s (Δ=%.0fm):\n", label, out.Delta)
	for i, r := range out.Routes {
		fmt.Printf("  #%d ψ=%.3f ρ=%.1f δ=%.1fm doors=%v\n", i+1, r.Psi, r.Rho, r.Dist, r.Doors)
	}
}
