// Closures: maintenance-day rerouting with a live Conditions overlay.
//
// A two-corridor mall offers two ways from the entrance to the food court,
// each passing a coffee shop. The example runs the same query three times
// against ONE engine — normal day, the north corridor closed for
// maintenance, and the closure plus a congested security gate — showing
// routes adapt per query with no engine rebuild.
package main

import (
	"fmt"
	"log"

	"ikrq"
)

func main() {
	// ---- Indoor space: two parallel corridors, a connector at each end.
	//
	//	entr -- north0 --dN-- north1 -- exitN
	//	  |                               |
	//	entr -- south0 --dS-- south1 -- court   (gate dG on south1→court)
	//
	//	espresso-bar on north0, drip-lab on south0.
	b := ikrq.NewSpaceBuilder()
	entr := b.AddPartition("entrance", ikrq.KindHallway, ikrq.Rect(0, 0, 10, 30, 0))
	north0 := b.AddPartition("north-0", ikrq.KindHallway, ikrq.Rect(10, 20, 40, 30, 0))
	north1 := b.AddPartition("north-1", ikrq.KindHallway, ikrq.Rect(40, 20, 70, 30, 0))
	south0 := b.AddPartition("south-0", ikrq.KindHallway, ikrq.Rect(10, 0, 40, 10, 0))
	south1 := b.AddPartition("south-1", ikrq.KindHallway, ikrq.Rect(40, 0, 70, 10, 0))
	court := b.AddPartition("food-court", ikrq.KindHallway, ikrq.Rect(70, 0, 90, 30, 0))
	espresso := b.AddPartition("espresso-bar", ikrq.KindRoom, ikrq.Rect(10, 30, 30, 40, 0))
	drip := b.AddPartition("drip-lab", ikrq.KindRoom, ikrq.Rect(10, -10, 30, 0, 0))

	b.AddDoor(ikrq.At(10, 25, 0), entr, north0)
	b.AddDoor(ikrq.At(10, 5, 0), entr, south0)
	dN := b.AddDoor(ikrq.At(40, 25, 0), north0, north1) // north connector
	b.AddDoor(ikrq.At(40, 5, 0), south0, south1)
	b.AddDoor(ikrq.At(70, 25, 0), north1, court)
	dG := b.AddDoor(ikrq.At(70, 5, 0), south1, court) // security gate
	b.AddDoor(ikrq.At(20, 30, 0), north0, espresso)
	b.AddDoor(ikrq.At(20, 0, 0), south0, drip)

	space, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	kb := ikrq.NewKeywordBuilder(space.NumPartitions())
	kb.AssignPartition(espresso, kb.DefineIWord("espresso-bar", []string{"coffee", "espresso"}))
	kb.AssignPartition(drip, kb.DefineIWord("drip-lab", []string{"coffee", "filter"}))
	index, err := kb.Build()
	if err != nil {
		log.Fatal(err)
	}
	engine := ikrq.NewEngine(space, index)

	req := ikrq.Request{
		Ps: ikrq.At(5, 15, 0), Pt: ikrq.At(85, 15, 0),
		Delta: 260, QW: []string{"coffee"}, K: 2, Alpha: 0.5, Tau: 0.2,
	}
	opt := ikrq.Options{Algorithm: ikrq.ToE}

	scenarios := []struct {
		name string
		cond *ikrq.Conditions
	}{
		{"normal day", nil},
		{"north corridor closed (maintenance)", ikrq.NewConditions().Close(dN)},
		{"closure + congested gate (+60m queue)",
			ikrq.NewConditions().Close(dN).Delay(dG, 60)},
	}
	for _, sc := range scenarios {
		req.Conditions = sc.cond
		res, err := engine.Search(req, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s ==\n", sc.name)
		if len(res.Routes) == 0 {
			fmt.Println("  no route within Δ")
			continue
		}
		for i, r := range res.Routes {
			fmt.Printf("  #%d ψ=%.3f δ=%.1fm via", i+1, r.Psi, r.Dist)
			for _, v := range r.Entered {
				fmt.Printf(" %s", space.Partition(v).Name)
			}
			fmt.Println()
		}
	}
}
