// Warehouse: the paper's robotics scenario (Section I) — a picking robot
// must fetch items identified by product keywords on one tour from the
// charging dock to the packing station, within a battery-limited travel
// budget.
package main

import (
	"fmt"
	"log"

	"ikrq"
)

func main() {
	// ---- Warehouse: two aisles of storage bays ------------------------
	//
	//	dock → aisle-A (bays A1..A4 above) → cross → aisle-B (bays B1..B4) → packing
	b := ikrq.NewSpaceBuilder()
	aisleA := b.AddPartition("aisle-A", ikrq.KindHallway, ikrq.Rect(0, 0, 100, 6, 0))
	cross := b.AddPartition("cross-aisle", ikrq.KindHallway, ikrq.Rect(100, 0, 110, 30, 0))
	aisleB := b.AddPartition("aisle-B", ikrq.KindHallway, ikrq.Rect(0, 24, 100, 30, 0))

	b.AddDoor(ikrq.At(100, 3, 0), aisleA, cross)
	b.AddDoor(ikrq.At(100, 27, 0), aisleB, cross)

	bay := func(name string, x0 float64, south bool) ikrq.PartitionID {
		if south {
			p := b.AddPartition(name, ikrq.KindRoom, ikrq.Rect(x0, 6, x0+20, 14, 0))
			b.AddDoor(ikrq.At(x0+10, 6, 0), aisleA, p)
			return p
		}
		p := b.AddPartition(name, ikrq.KindRoom, ikrq.Rect(x0, 16, x0+20, 24, 0))
		b.AddDoor(ikrq.At(x0+10, 24, 0), aisleB, p)
		return p
	}
	bays := map[string]struct {
		part  ikrq.PartitionID
		items []string
	}{}
	for i, spec := range []struct {
		name  string
		south bool
		items []string
	}{
		{"bay-A1", true, []string{"screws", "bolts", "washers"}},
		{"bay-A2", true, []string{"cables", "connectors"}},
		{"bay-A3", true, []string{"batteries", "chargers"}},
		{"bay-A4", true, []string{"sensors", "actuators"}},
		{"bay-B1", false, []string{"gears", "belts"}},
		{"bay-B2", false, []string{"bearings", "shafts"}},
		{"bay-B3", false, []string{"motors", "drivers"}},
		{"bay-B4", false, []string{"filament", "resin"}},
	} {
		x0 := float64(5 + 25*(i%4))
		p := bay(spec.name, x0, spec.south)
		bays[spec.name] = struct {
			part  ikrq.PartitionID
			items []string
		}{p, spec.items}
	}

	space, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	kb := ikrq.NewKeywordBuilder(space.NumPartitions())
	for name, info := range bays {
		kb.AssignPartition(info.part, kb.DefineIWord(name, info.items))
	}
	index, err := kb.Build()
	if err != nil {
		log.Fatal(err)
	}

	// ---- Pick list: three items, battery budget 400m ------------------
	engine := ikrq.NewEngine(space, index)
	req := ikrq.Request{
		Ps:    ikrq.At(2, 3, 0),  // charging dock, aisle-A west end
		Pt:    ikrq.At(2, 27, 0), // packing station, aisle-B west end
		Delta: 400,
		QW:    []string{"bolts", "motors", "filament"},
		K:     4,
		Alpha: 0.8, // coverage matters far more than meters for a robot
		Tau:   0.2,
	}
	res, err := engine.Search(req, ikrq.Options{Algorithm: ikrq.KoE})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pick tour for %v (budget %.0fm):\n", req.QW, req.Delta)
	for i, r := range res.Routes {
		fmt.Printf("#%d ψ=%.4f ρ=%.3f δ=%.0fm — bays:", i+1, r.Psi, r.Rho, r.Dist)
		for _, v := range r.KP {
			p := space.Partition(v)
			if p.Kind == ikrq.KindRoom {
				fmt.Printf(" %s", p.Name)
			}
		}
		fmt.Println()
	}
	if len(res.Routes) > 0 && res.Routes[0].Rho >= 4 {
		fmt.Println("all three picks covered on the best tour")
	}
}
