// Quickstart: build a small single-floor mall by hand (the shape of the
// paper's Fig. 1), attach two-level keywords, and run one IKRQ query with
// both search algorithms.
package main

import (
	"fmt"
	"log"

	"ikrq"
)

func main() {
	// ---- Indoor space: a hallway strip with branded shops -------------
	//
	//	 zara      costa     apple
	//	  |d3        |d4       |d5
	//	h0 --d0-- h1 --d1-- h2 --d2-- h3
	//	            |d6       |d7
	//	         starbucks  samsung
	b := ikrq.NewSpaceBuilder()
	var hall [4]ikrq.PartitionID
	for i := range hall {
		x := float64(12 * i)
		hall[i] = b.AddPartition(fmt.Sprintf("hall-%d", i), ikrq.KindHallway,
			ikrq.Rect(x, 0, x+12, 8, 0))
	}
	shop := func(name string, x0 float64, above bool) ikrq.PartitionID {
		if above {
			return b.AddPartition(name, ikrq.KindRoom, ikrq.Rect(x0, 8, x0+12, 18, 0))
		}
		return b.AddPartition(name, ikrq.KindRoom, ikrq.Rect(x0, -10, x0+12, 0, 0))
	}
	zara := shop("zara", 0, true)
	costa := shop("costa", 12, true)
	apple := shop("apple", 24, true)
	starbucks := shop("starbucks", 12, false)
	samsung := shop("samsung", 24, false)

	for i := 0; i < 3; i++ {
		b.AddDoor(ikrq.At(float64(12*i+12), 4, 0), hall[i], hall[i+1])
	}
	b.AddDoor(ikrq.At(6, 8, 0), hall[0], zara)
	b.AddDoor(ikrq.At(18, 8, 0), hall[1], costa)
	b.AddDoor(ikrq.At(30, 8, 0), hall[2], apple)
	b.AddDoor(ikrq.At(18, 0, 0), hall[1], starbucks)
	b.AddDoor(ikrq.At(30, 0, 0), hall[2], samsung)

	space, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// ---- Keywords: i-words identify shops, t-words describe them ------
	kb := ikrq.NewKeywordBuilder(space.NumPartitions())
	kb.AssignPartition(zara, kb.DefineIWord("zara", []string{"coat", "pants", "sweater"}))
	kb.AssignPartition(costa, kb.DefineIWord("costa", []string{"coffee", "drinks", "mocha"}))
	kb.AssignPartition(apple, kb.DefineIWord("apple", []string{"phone", "mac", "laptop", "watch"}))
	kb.AssignPartition(starbucks, kb.DefineIWord("starbucks", []string{"coffee", "mocha", "latte", "drinks"}))
	kb.AssignPartition(samsung, kb.DefineIWord("samsung", []string{"phone", "laptop", "earphone"}))
	index, err := kb.Build()
	if err != nil {
		log.Fatal(err)
	}

	// ---- Query: top-3 routes covering "latte" and "laptop" ------------
	engine := ikrq.NewEngine(space, index)
	req := ikrq.Request{
		Ps:    ikrq.At(2, 4, 0),  // in hall-0
		Pt:    ikrq.At(46, 4, 0), // in hall-3
		Delta: 160,
		QW:    []string{"latte", "laptop"},
		K:     3,
		Alpha: 0.5,
		Tau:   0.2,
	}
	for _, alg := range []ikrq.Algorithm{ikrq.ToE, ikrq.KoE} {
		res, err := engine.Search(req, ikrq.Options{Algorithm: alg})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%v found %d routes in %v:\n", alg, len(res.Routes), res.Stats.Elapsed)
		for i, r := range res.Routes {
			fmt.Printf("  #%d ψ=%.4f ρ=%.3f δ=%.1fm via", i+1, r.Psi, r.Rho, r.Dist)
			for _, v := range r.KP {
				fmt.Printf(" %s", space.Partition(v).Name)
			}
			fmt.Println()
		}
	}

	// "latte" has no exact match here — starbucks matches directly via
	// T2I, and costa is an indirect (Jaccard) match, so routes through
	// either shop are relevant, starbucks more so.
}
