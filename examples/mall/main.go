// Mall: run the paper's evaluation workload end to end — generate the
// synthetic multi-floor mall of Section V-A (141 partitions and 220 doors
// per floor), draw query instances with Table IV's default parameters, and
// compare the two search algorithms on them.
package main

import (
	"flag"
	"fmt"
	"log"

	"ikrq"
	"ikrq/internal/gen"
)

func main() {
	floors := flag.Int("floors", 5, "floor count")
	seed := flag.Uint64("seed", 1, "generation seed")
	n := flag.Int("n", 5, "query instances")
	flag.Parse()

	mall, vocab, index, err := ikrq.NewSyntheticMall(*floors, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthetic mall: %d floors, %d partitions, %d doors, %d branded rooms\n",
		mall.Space.Floors(), mall.Space.NumPartitions(), mall.Space.NumDoors(), len(mall.Rooms))

	engine := ikrq.NewEngine(mall.Space, index)
	qgen := ikrq.NewQueryGen(mall, index, vocab, engine, *seed+7)
	cfg := gen.DefaultQueryConfig(*seed + 7)
	cfg.Instances = *n
	reqs, err := qgen.Instances(cfg)
	if err != nil {
		log.Fatal(err)
	}

	for i, req := range reqs {
		fmt.Printf("\nquery %d: Δ=%.0fm, |QW|=%d, k=%d\n", i+1, req.Delta, len(req.QW), req.K)
		for _, alg := range []ikrq.Algorithm{ikrq.ToE, ikrq.KoE} {
			res, err := engine.Search(req, ikrq.Options{Algorithm: alg})
			if err != nil {
				log.Fatal(err)
			}
			best := "-"
			if len(res.Routes) > 0 {
				best = fmt.Sprintf("ψ=%.4f ρ=%.2f δ=%.0fm", res.Routes[0].Psi,
					res.Routes[0].Rho, res.Routes[0].Dist)
			}
			fmt.Printf("  %-3v %2d routes  %-32s %8v  (pops %d, stamps %d)\n",
				alg, len(res.Routes), best, res.Stats.Elapsed,
				res.Stats.Pops, res.Stats.StampsCreated)
		}
	}
}
