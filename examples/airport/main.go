// Airport: the paper's motivating scenario (Section I). Jesper has passed
// security and must reach his gate within a time budget while buying
// cookies, withdrawing euros and eating noodles. The time constraint T
// converts to a distance constraint Δ = Vmax · T.
package main

import (
	"fmt"
	"log"

	"ikrq"
)

func main() {
	// ---- Terminal: a long pier with shops either side ----------------
	//
	//	security → [pier of 8 hallway cells] → gates
	//	shops: cookie shop, bank, ATM, noodle bar, bookstore, duty-free
	b := ikrq.NewSpaceBuilder()
	const cells = 8
	var pier [cells]ikrq.PartitionID
	for i := 0; i < cells; i++ {
		x := float64(60 * i)
		pier[i] = b.AddPartition(fmt.Sprintf("pier-%d", i), ikrq.KindHallway,
			ikrq.Rect(x, 0, x+60, 20, 0))
	}
	for i := 0; i+1 < cells; i++ {
		b.AddDoor(ikrq.At(float64(60*i+60), 10, 0), pier[i], pier[i+1])
	}
	shopAt := func(name string, cell int, above bool) ikrq.PartitionID {
		x0 := float64(60*cell) + 15
		var r ikrq.PartitionID
		if above {
			r = b.AddPartition(name, ikrq.KindRoom, ikrq.Rect(x0, 20, x0+30, 50, 0))
			b.AddDoor(ikrq.At(x0+15, 20, 0), pier[cell], r)
		} else {
			r = b.AddPartition(name, ikrq.KindRoom, ikrq.Rect(x0, -30, x0+30, 0, 0))
			b.AddDoor(ikrq.At(x0+15, 0, 0), pier[cell], r)
		}
		return r
	}
	cookieShop := shopAt("danish-delights", 1, true)
	bank := shopAt("nordbank", 2, false)
	atm := shopAt("atm-a12", 5, true)
	noodles := shopAt("wok-house", 4, false)
	bookstore := shopAt("page-one", 3, true)
	dutyFree := shopAt("taxfree-cph", 6, false)

	space, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	kb := ikrq.NewKeywordBuilder(space.NumPartitions())
	kb.AssignPartition(cookieShop, kb.DefineIWord("danish-delights", []string{"cookies", "butter", "chocolate"}))
	kb.AssignPartition(bank, kb.DefineIWord("nordbank", []string{"euro", "krone", "exchange"}))
	kb.AssignPartition(atm, kb.DefineIWord("atm-a12", []string{"euro", "krone", "cash"}))
	kb.AssignPartition(noodles, kb.DefineIWord("wok-house", []string{"noodles", "soup", "dumplings"}))
	kb.AssignPartition(bookstore, kb.DefineIWord("page-one", []string{"books", "magazines"}))
	kb.AssignPartition(dutyFree, kb.DefineIWord("taxfree-cph", []string{"perfume", "chocolate", "whisky"}))
	index, err := kb.Build()
	if err != nil {
		log.Fatal(err)
	}

	// ---- The query -----------------------------------------------------
	// T = 12 minutes of walking budget at Vmax = 1.4 m/s → Δ = 1008 m.
	const (
		vmax    = 1.4  // m/s, maximum indoor walking speed
		minutes = 12.0 // time budget
	)
	delta := vmax * minutes * 60

	engine := ikrq.NewEngine(space, index)
	req := ikrq.Request{
		Ps:    ikrq.At(10, 10, 0),  // just past security, pier-0
		Pt:    ikrq.At(470, 10, 0), // the gate, pier-7
		Delta: delta,
		QW:    []string{"cookies", "euro", "noodles"},
		K:     3,
		Alpha: 0.3, // passengers weigh distance heavily (Section III-C)
		Tau:   0.2,
	}
	res, err := engine.Search(req, ikrq.Options{Algorithm: ikrq.KoE})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gate run with Δ=%.0fm (%v walking at %.1fm/s):\n", delta, "12m0s", vmax)
	for i, r := range res.Routes {
		eta := r.Dist / vmax / 60
		fmt.Printf("#%d ψ=%.4f ρ=%.3f δ=%.0fm (≈%.1f min) — stops:", i+1, r.Psi, r.Rho, r.Dist, eta)
		for _, v := range r.KP {
			p := space.Partition(v)
			if p.Kind == ikrq.KindRoom {
				fmt.Printf(" %s", p.Name)
			}
		}
		fmt.Println()
	}
	// The euro keyword matches both the ATM and the bank directly; routes
	// through either appear as distinct (non-homogeneous) results, and the
	// ranking trades the extra meters against keyword coverage.
}
